package nativevm

import (
	"repro/internal/ir"
	"repro/internal/memdesc"
)

// This file is the native half of the dynamic type-identity plane. The
// machine mirrors the managed engine's per-object descriptors in an
// address-range table (memdesc.Table): stack allocas and globals register
// their declared C type at allocation, heap blocks adopt a type at the first
// checked pointer cast, and frame epilogues / free retire registrations. The
// mirror is pure observation — native execution never *checks* it (that is
// the blind spot the corpus demonstrates) — but it gives the introspection
// builtins and the hardened nlibc the same answers the managed family gives.

// moduleWantsIntrospection reports whether the program can observe the type
// mirror at all: it declares one of the introspection externs. When it
// cannot, the machine skips all registrations (they would be dead weight on
// the hot allocation path).
func moduleWantsIntrospection(mod *ir.Module) bool {
	for _, f := range mod.Funcs {
		if !f.IsDecl {
			continue
		}
		switch f.Name {
		case "_size_of_object", "_type_of", "_bounds_of":
			return true
		}
	}
	return false
}

// TrackingTypes reports whether the type mirror is active for this run.
func (m *Machine) TrackingTypes() bool { return m.trackTypes }

// HardenedLibc reports whether nlibc's bulk-write family should clamp
// writes to the destination object's known extent (Config.Hardened).
func (m *Machine) HardenedLibc() bool { return m.hardened }

// WriteCap returns how many of n bytes may be written starting at dst
// under the hardened-libc policy: n itself when the machine is not
// hardened or knows nothing about dst (graceful degradation), otherwise
// the remaining room in dst's allocation.
func (m *Machine) WriteCap(dst uint64, n int64) int64 {
	if !m.hardened || n <= 0 {
		return n
	}
	if base, size, ok := m.ObjectExtent(dst); ok {
		if room := int64(base) + size - int64(dst); room >= 0 && room < n {
			return room
		}
	}
	return n
}

// descFor returns the shared descriptor for a declared C type, memoized by
// spelling (the native analogue of core.Engine.descFor).
func (m *Machine) descFor(ty ir.Type, ctype string) *memdesc.Desc {
	if d, ok := m.descCache[ctype]; ok {
		return d
	}
	d := memdesc.FromIR(ty, ctype)
	if m.descCache == nil {
		m.descCache = make(map[string]*memdesc.Desc, 16)
	}
	m.descCache[ctype] = d
	return d
}

// castDescFor resolves a checked cast's target descriptor, preferring the
// instruction's Ty2 pointee and falling back to the module struct table for
// round-tripped modules whose pointers are all typed "ptr".
func (m *Machine) castDescFor(in *ir.Instr) *memdesc.Desc {
	if d, ok := m.castDesc[in.CType]; ok {
		return d
	}
	var d *memdesc.Desc
	if pt, ok := in.Ty2.(*ir.PtrType); ok {
		if st, ok := pt.Elem.(*ir.StructType); ok && st.Size() > 0 {
			d = memdesc.FromIR(st, in.CType)
		}
	}
	if d == nil {
		if name, ok := memdesc.TagName(in.CType); ok {
			if st := m.Mod.Structs[name]; st != nil && st.Size() > 0 {
				d = memdesc.FromIR(st, in.CType)
			}
		}
	}
	if m.castDesc == nil {
		m.castDesc = make(map[string]*memdesc.Desc, 8)
	}
	m.castDesc[in.CType] = d
	return d
}

// adoptHeapType gives a type-less heap block an effective type at its first
// checked cast (the malloc-then-cast pattern), mirroring core.CheckCast's
// adoption rule. Best-effort and silent: native execution never errors on a
// cast, whatever the types say.
func (m *Machine) adoptHeapType(addr uint64, in *ir.Instr) {
	if !m.trackTypes || addr == 0 {
		return
	}
	if _, _, _, ok := m.Types.Find(int64(addr)); ok {
		return // already typed (stack, global, or earlier adoption)
	}
	d := m.castDescFor(in)
	if d == nil || d.Size <= 0 {
		return
	}
	if size, ok := m.Alloc.SizeOf(addr); ok && size >= d.Size {
		m.Types.Register(int64(addr), size, d)
	}
}

// RetireHeapType drops a heap block's type registration at free, so a later
// allocation reusing the address range starts type-less. nlibc's free and
// realloc call it before handing the block back to the allocator.
func (m *Machine) RetireHeapType(addr uint64) {
	if !m.trackTypes || addr == 0 {
		return
	}
	if size, ok := m.Alloc.SizeOf(addr); ok {
		m.Types.RemoveRange(int64(addr), int64(addr)+size)
	}
}

// ObjectExtent resolves the allocation containing addr: heap blocks via the
// allocator's bookkeeping (base addresses only — interior heap pointers
// resolve only if the block has an adopted type registration), everything
// else via the type mirror. ok is false when the machine knows nothing,
// which is the honest native answer (-1 / 0 from the builtins).
func (m *Machine) ObjectExtent(addr uint64) (base uint64, size int64, ok bool) {
	if sz, ok := m.Alloc.SizeOf(addr); ok {
		return addr, sz, true
	}
	if _, b, sz, ok := m.Types.Find(int64(addr)); ok {
		return uint64(b), sz, true
	}
	return 0, 0, false
}

// TypeNameAt returns the effective C type name of the allocation containing
// addr, or "" when untyped/unknown.
func (m *Machine) TypeNameAt(addr uint64) string {
	if d, _, _, ok := m.Types.Find(int64(addr)); ok && d != nil {
		return d.CType
	}
	return ""
}

// InternTypeStr returns the deterministic address of the NUL-terminated
// type-name string s in the TypeStrBase region, interning it on first use.
// The region is engine metadata: mapped lazily, never heap-charged, so
// introspection cannot shift a fault-schedule coordinate.
func (m *Machine) InternTypeStr(s string) uint64 {
	if at, ok := m.typeStrs[s]; ok {
		return at
	}
	if m.typeStrs == nil {
		m.typeStrs = make(map[string]uint64, 8)
		m.Mem.Map(TypeStrBase, typeStrSize)
		m.typeStrCur = TypeStrBase
	}
	need := uint64(len(s) + 1)
	if m.typeStrCur+need > TypeStrBase+typeStrSize {
		// Region exhausted (pathological): reuse the base — the string there
		// is wrong but the address is valid, and native stays crash-free.
		return TypeStrBase
	}
	at := m.typeStrCur
	m.Mem.WriteBytes(at, append([]byte(s), 0))
	m.typeStrCur += need
	m.typeStrs[s] = at
	return at
}
