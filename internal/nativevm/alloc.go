package nativevm

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/nativemem"
)

// FreeListAlloc is the default native heap: a bump allocator with size-class
// free lists and immediate LIFO reuse. Reuse is the property the paper's P3
// hinges on: memory freed and quickly re-allocated makes dangling-pointer
// accesses look valid again to shadow-memory tools.
type FreeListAlloc struct {
	mem   *nativemem.Memory
	next  uint64
	limit uint64
	free  map[int64][]uint64
	sizes map[uint64]int64
}

// NewFreeListAlloc builds the default allocator over the heap segment.
func NewFreeListAlloc(mem *nativemem.Memory) *FreeListAlloc {
	return &FreeListAlloc{
		mem:   mem,
		next:  HeapBase,
		limit: HeapBase + (1 << 31),
		free:  map[int64][]uint64{},
		sizes: map[uint64]int64{},
	}
}

func roundClass(size int64) int64 {
	if size < 16 {
		size = 16
	}
	return (size + 15) &^ 15
}

// Malloc returns a 16-aligned block; freed blocks of the same class are
// reused immediately, newest first.
func (a *FreeListAlloc) Malloc(size int64) uint64 {
	if size < 0 {
		return 0
	}
	cls := roundClass(size)
	if lst := a.free[cls]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		a.free[cls] = lst[:len(lst)-1]
		a.sizes[addr] = cls
		return addr
	}
	addr := a.next
	a.next += uint64(cls)
	if a.next > a.limit {
		return 0 // out of simulated heap
	}
	a.mem.Map(addr, uint64(cls))
	a.sizes[addr] = cls
	return addr
}

// Free releases a block back to its size class. Freeing an unknown pointer
// is what glibc's consistency checks abort on ("free(): invalid pointer").
func (a *FreeListAlloc) Free(addr uint64) error {
	cls, ok := a.sizes[addr]
	if !ok {
		return &GlibcAbort{What: "free(): invalid pointer", Addr: addr}
	}
	delete(a.sizes, addr)
	a.free[cls] = append(a.free[cls], addr)
	return nil
}

// SizeOf reports the usable size of a live block.
func (a *FreeListAlloc) SizeOf(addr uint64) (int64, bool) {
	s, ok := a.sizes[addr]
	return s, ok
}

// gatedAlloc wraps the configured heap allocator (default, ASan's, or
// memcheck's) with the run's fault injector. Every guest malloc is charged
// or denied *before* the inner allocator sees it, so heap budgets and fault
// schedules produce identical NULL returns across all four engines, and a
// denied request never maps host memory. It tracks the *requested* size per
// block (inner allocators round to size classes and add redzones), so
// Release returns exactly what ChargeHeap took.
type gatedAlloc struct {
	inner   Allocator
	inj     *fault.Injector
	charged map[uint64]int64
}

func (g *gatedAlloc) Malloc(size int64) uint64 {
	if g.inj.ChargeHeap(size) != fault.OK {
		return 0
	}
	addr := g.inner.Malloc(size)
	if addr == 0 {
		g.inj.Release(size) // inner allocator ran out of simulated heap
		return 0
	}
	g.charged[addr] = size
	return addr
}

func (g *gatedAlloc) Free(addr uint64) error {
	err := g.inner.Free(addr)
	if err == nil {
		if sz, ok := g.charged[addr]; ok {
			g.inj.Release(sz)
			delete(g.charged, addr)
		}
	}
	return err
}

func (g *gatedAlloc) SizeOf(addr uint64) (int64, bool) { return g.inner.SizeOf(addr) }

// GlibcAbort models glibc detecting heap misuse and aborting the process.
type GlibcAbort struct {
	What string
	Addr uint64
}

func (e *GlibcAbort) Error() string {
	return fmt.Sprintf("%s (0x%x): process aborted", e.What, e.Addr)
}
