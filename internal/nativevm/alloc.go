package nativevm

import (
	"fmt"

	"repro/internal/nativemem"
)

// FreeListAlloc is the default native heap: a bump allocator with size-class
// free lists and immediate LIFO reuse. Reuse is the property the paper's P3
// hinges on: memory freed and quickly re-allocated makes dangling-pointer
// accesses look valid again to shadow-memory tools.
type FreeListAlloc struct {
	mem   *nativemem.Memory
	next  uint64
	limit uint64
	free  map[int64][]uint64
	sizes map[uint64]int64
}

// NewFreeListAlloc builds the default allocator over the heap segment.
func NewFreeListAlloc(mem *nativemem.Memory) *FreeListAlloc {
	return &FreeListAlloc{
		mem:   mem,
		next:  HeapBase,
		limit: HeapBase + (1 << 31),
		free:  map[int64][]uint64{},
		sizes: map[uint64]int64{},
	}
}

func roundClass(size int64) int64 {
	if size < 16 {
		size = 16
	}
	return (size + 15) &^ 15
}

// Malloc returns a 16-aligned block; freed blocks of the same class are
// reused immediately, newest first.
func (a *FreeListAlloc) Malloc(size int64) uint64 {
	if size < 0 {
		return 0
	}
	cls := roundClass(size)
	if lst := a.free[cls]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		a.free[cls] = lst[:len(lst)-1]
		a.sizes[addr] = cls
		return addr
	}
	addr := a.next
	a.next += uint64(cls)
	if a.next > a.limit {
		return 0 // out of simulated heap
	}
	a.mem.Map(addr, uint64(cls))
	a.sizes[addr] = cls
	return addr
}

// Free releases a block back to its size class. Freeing an unknown pointer
// is what glibc's consistency checks abort on ("free(): invalid pointer").
func (a *FreeListAlloc) Free(addr uint64) error {
	cls, ok := a.sizes[addr]
	if !ok {
		return &GlibcAbort{What: "free(): invalid pointer", Addr: addr}
	}
	delete(a.sizes, addr)
	a.free[cls] = append(a.free[cls], addr)
	return nil
}

// SizeOf reports the usable size of a live block.
func (a *FreeListAlloc) SizeOf(addr uint64) (int64, bool) {
	s, ok := a.sizes[addr]
	return s, ok
}

// GlibcAbort models glibc detecting heap misuse and aborting the process.
type GlibcAbort struct {
	What string
	Addr uint64
}

func (e *GlibcAbort) Error() string {
	return fmt.Sprintf("%s (0x%x): process aborted", e.What, e.Addr)
}
