// Package vulndb reproduces the paper's §2.1 study: keyword searches over
// the CVE and ExploitDB databases, classifying memory-error records into
// spatial, temporal, NULL-dereference, and "other" categories per year
// (Figs. 1 and 2).
//
// The real databases cannot ship with this repository, so a deterministic
// generator synthesizes records (2012-03 through 2017-09, like the paper)
// whose category mix follows the published curves — spatial errors dominant
// and climbing to an all-time high, temporal second, NULL third. What is
// reproduced faithfully is the *method*: records carry natural-language
// descriptions, and the classifier assigns categories purely by the paper's
// keyword search, so classifier precision is measurable against the
// generator's ground truth.
package vulndb

import (
	"fmt"
	"sort"
	"strings"
)

// Category is a memory-error class from the paper's Figures 1 and 2.
type Category int

const (
	Spatial Category = iota
	Temporal
	NullDeref
	Other
	Unclassified
)

var catNames = [...]string{"spatial", "temporal", "null-deref", "other", "unclassified"}

func (c Category) String() string { return catNames[c] }

// Record is one vulnerability or exploit entry.
type Record struct {
	ID          string
	Year        int
	Month       int
	Description string
	// True category per the generator (hidden from the classifier).
	Truth Category
}

// rng is a small deterministic PRNG (split from the engines' LCG so the
// dataset never changes under refactoring).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 17
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pick(ss []string) string { return ss[r.intn(len(ss))] }

// description templates per category; phrasing mirrors real CVE entries.
var spatialPhrases = []string{
	"stack-based buffer overflow in the %s parser allows remote attackers to execute arbitrary code via a crafted %s file",
	"heap-based buffer overflow in %s before %s allows attackers to cause a denial of service via a long %s argument",
	"out-of-bounds read in the %s function in %s allows context-dependent attackers to obtain sensitive information",
	"out-of-bounds write in %s in %s allows remote attackers to overwrite memory via malformed %s input",
	"buffer underflow in the %s decoder in %s allows attackers to corrupt adjacent allocations",
	"global buffer overflow in %s when processing %s records leads to information disclosure",
}

var temporalPhrases = []string{
	"use-after-free vulnerability in the %s component in %s allows remote attackers to execute arbitrary code",
	"use after free in %s in %s allows attackers to cause a denial of service via vectors involving %s teardown",
	"dangling pointer in the %s handler of %s is dereferenced after the session is destroyed",
}

var nullPhrases = []string{
	"NULL pointer dereference in the %s function in %s allows remote attackers to cause a denial of service",
	"null dereference in %s when the %s header is absent crashes the daemon",
}

var otherPhrases = []string{
	"double free vulnerability in %s in %s allows attackers to corrupt the allocator state",
	"invalid free in the %s cleanup path of %s when initialization fails",
	"format string vulnerability in the %s logger in %s allows attackers to read stack contents via %%s specifiers",
}

var noisePhrases = []string{
	"SQL injection in the %s module of %s allows remote attackers to read the %s table",
	"cross-site scripting in %s in %s allows remote attackers to inject arbitrary web script",
	"integer signedness issue in %s in %s (without memory corruption) confuses the %s accounting",
	"directory traversal in the %s endpoint of %s discloses files",
}

var components = []string{
	"png_decode", "xml_parse", "tls_handshake", "jpeg_scan", "pdf_render",
	"http_chunk", "regex_compile", "zip_extract", "dns_reply", "font_hint",
	"script_eval", "audio_mix", "ssh_kex", "json_lex", "bmp_load",
}

var products = []string{
	"libmediaparse", "OpenPacket", "FastServe", "ImageSuite 2.x", "CoreView",
	"NetDaemon", "docutils-c", "TinyBrowse", "StreamKit", "ProtoGate",
}

var extras = []string{"configuration", "session", "metadata", "index", "preview"}

// GenerateCVE synthesizes the vulnerability database (Fig. 1's input).
// Counts per category and year follow the paper's curves: spatial rising
// from ~350 to an all-time high ~590, temporal ~100→280, NULL ~170→120,
// other ~60, plus non-memory noise the classifier must reject.
func GenerateCVE(seed uint64) []Record {
	// per-year target counts, 2012..2017 (2017 is a partial year: to 09).
	spatial := []int{351, 330, 420, 392, 489, 588}
	temporal := []int{98, 121, 186, 204, 251, 282}
	null := []int{172, 160, 151, 139, 128, 118}
	other := []int{55, 61, 58, 66, 63, 71}
	noise := []int{240, 240, 240, 240, 240, 180}
	return generate(seed, spatial, temporal, null, other, noise, "CVE")
}

// GenerateExploitDB synthesizes the exploit database (Fig. 2's input); the
// paper notes exploit volume tracks vulnerability volume at roughly 1/6.
func GenerateExploitDB(seed uint64) []Record {
	spatial := []int{58, 52, 66, 61, 75, 88}
	temporal := []int{14, 18, 27, 31, 38, 44}
	null := []int{24, 22, 20, 18, 17, 15}
	other := []int{9, 10, 9, 11, 10, 12}
	noise := []int{40, 40, 40, 40, 40, 30}
	return generate(seed, spatial, temporal, null, other, noise, "EDB")
}

func generate(seed uint64, spatial, temporal, null, other, noise []int, prefix string) []Record {
	r := &rng{s: seed}
	var out []Record
	id := 1000
	add := func(year, n int, truth Category, phrases []string) {
		for i := 0; i < n; i++ {
			tpl := r.pick(phrases)
			slots := strings.Count(tpl, "%s")
			args := make([]any, slots)
			for k := range args {
				switch k {
				case 0:
					args[k] = r.pick(components)
				case 1:
					args[k] = r.pick(products)
				default:
					args[k] = r.pick(extras)
				}
			}
			month := 1 + r.intn(12)
			if year == 2017 {
				month = 1 + r.intn(9) // the study window ends 2017-09
			}
			if year == 2012 && month < 3 {
				month = 3 // and starts 2012-03
			}
			out = append(out, Record{
				ID:          fmt.Sprintf("%s-%d-%d", prefix, year, id),
				Year:        year,
				Month:       month,
				Description: fmt.Sprintf(tpl, args...),
				Truth:       truth,
			})
			id++
		}
	}
	for yi, year := 0, 2012; year <= 2017; year, yi = year+1, yi+1 {
		add(year, spatial[yi], Spatial, spatialPhrases)
		add(year, temporal[yi], Temporal, temporalPhrases)
		add(year, null[yi], NullDeref, nullPhrases)
		add(year, other[yi], Other, otherPhrases)
		add(year, noise[yi], Unclassified, noisePhrases)
	}
	return out
}

// Classify assigns a category by keyword search, the paper's §2.1 method.
// Order matters: the first matching keyword family wins.
func Classify(description string) Category {
	d := strings.ToLower(description)
	contains := func(kws ...string) bool {
		for _, kw := range kws {
			if strings.Contains(d, kw) {
				return true
			}
		}
		return false
	}
	switch {
	case contains("use-after-free", "use after free", "dangling pointer"):
		return Temporal
	case contains("double free", "invalid free", "format string"):
		return Other
	case contains("null pointer dereference", "null dereference"):
		return NullDeref
	case contains("buffer overflow", "buffer underflow", "out-of-bounds read",
		"out-of-bounds write", "out of bounds", "heap overflow", "stack overflow in"):
		return Spatial
	}
	return Unclassified
}

// Series is one line of Fig. 1/2: counts per year for a category.
type Series struct {
	Category Category
	ByYear   map[int]int
}

// Aggregate classifies all records and buckets them by year.
func Aggregate(records []Record) []Series {
	cats := []Category{Spatial, Temporal, NullDeref, Other}
	byCat := map[Category]map[int]int{}
	for _, c := range cats {
		byCat[c] = map[int]int{}
	}
	for _, rec := range records {
		c := Classify(rec.Description)
		if c == Unclassified {
			continue
		}
		byCat[c][rec.Year]++
	}
	var out []Series
	for _, c := range cats {
		out = append(out, Series{Category: c, ByYear: byCat[c]})
	}
	return out
}

// ClassifierAccuracy measures the keyword classifier against ground truth
// (records whose truth is Unclassified must be rejected).
func ClassifierAccuracy(records []Record) (correct, total int) {
	for _, rec := range records {
		if Classify(rec.Description) == rec.Truth {
			correct++
		}
		total++
	}
	return
}

// Render prints a figure as an ASCII table (one row per category).
func Render(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	years := []int{2012, 2013, 2014, 2015, 2016, 2017}
	fmt.Fprintf(&b, "  %-10s", "category")
	for _, y := range years {
		fmt.Fprintf(&b, "%7d", y)
	}
	b.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&b, "  %-10s", s.Category)
		for _, y := range years {
			fmt.Fprintf(&b, "%7d", s.ByYear[y])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PeakYear returns the year in which a category peaks (the paper's "spatial
// errors are currently on an all-time high" claim checks as Spatial→2017).
func PeakYear(series []Series, cat Category) int {
	for _, s := range series {
		if s.Category != cat {
			continue
		}
		years := make([]int, 0, len(s.ByYear))
		for y := range s.ByYear {
			years = append(years, y)
		}
		sort.Ints(years)
		best, bestN := 0, -1
		for _, y := range years {
			if s.ByYear[y] > bestN {
				best, bestN = y, s.ByYear[y]
			}
		}
		return best
	}
	return 0
}
