package vulndb

import "testing"

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateCVE(1802)
	b := GenerateCVE(1802)
	if len(a) != len(b) {
		t.Fatal("nondeterministic record count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}

func TestStudyWindow(t *testing.T) {
	for _, rec := range GenerateCVE(7) {
		if rec.Year < 2012 || rec.Year > 2017 {
			t.Fatalf("year %d outside window", rec.Year)
		}
		if rec.Year == 2012 && rec.Month < 3 {
			t.Fatalf("record before 2012-03")
		}
		if rec.Year == 2017 && rec.Month > 9 {
			t.Fatalf("record after 2017-09")
		}
	}
}

func TestClassifierKeywords(t *testing.T) {
	cases := []struct {
		desc string
		want Category
	}{
		{"Stack-based buffer overflow in the png parser", Spatial},
		{"heap-based BUFFER OVERFLOW in libfoo", Spatial},
		{"Out-of-bounds read in bar", Spatial},
		{"use-after-free vulnerability in the renderer", Temporal},
		{"Use After Free in the timer", Temporal},
		{"dangling pointer in session teardown", Temporal},
		{"NULL pointer dereference in the daemon", NullDeref},
		{"double free vulnerability in the allocator", Other},
		{"format string vulnerability in the logger", Other},
		{"SQL injection in the admin module", Unclassified},
		{"cross-site scripting in the wiki", Unclassified},
	}
	for _, c := range cases {
		if got := Classify(c.desc); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.desc, got, c.want)
		}
	}
}

func TestClassifierMatchesGroundTruth(t *testing.T) {
	correct, total := ClassifierAccuracy(GenerateCVE(1802))
	if correct != total {
		t.Errorf("classifier accuracy %d/%d; generated phrasing should be unambiguous", correct, total)
	}
}

func TestFigureShapes(t *testing.T) {
	series := Aggregate(GenerateCVE(1802))
	byCat := map[Category]map[int]int{}
	for _, s := range series {
		byCat[s.Category] = s.ByYear
	}
	// The paper's claims: spatial is the most common category every year
	// and peaks in 2017 (all-time high); temporal rises monotonically-ish;
	// NULL is third and declining.
	for y := 2012; y <= 2017; y++ {
		if byCat[Spatial][y] <= byCat[Temporal][y] || byCat[Spatial][y] <= byCat[NullDeref][y] {
			t.Errorf("year %d: spatial should dominate (%d/%d/%d)",
				y, byCat[Spatial][y], byCat[Temporal][y], byCat[NullDeref][y])
		}
	}
	if PeakYear(series, Spatial) != 2017 {
		t.Errorf("spatial peak = %d, want 2017", PeakYear(series, Spatial))
	}
	if byCat[Temporal][2017] <= byCat[Temporal][2012] {
		t.Error("temporal errors should rise over the window")
	}
	if byCat[NullDeref][2017] >= byCat[NullDeref][2012] {
		t.Error("NULL dereferences should decline over the window")
	}
}

func TestExploitTrackVulnerabilities(t *testing.T) {
	vulns := Aggregate(GenerateCVE(1802))
	exploits := Aggregate(GenerateExploitDB(1803))
	vIdx := map[Category]map[int]int{}
	for _, s := range vulns {
		vIdx[s.Category] = s.ByYear
	}
	for _, s := range exploits {
		for y, n := range s.ByYear {
			if n > vIdx[s.Category][y] {
				t.Errorf("%v %d: more exploits (%d) than vulnerabilities (%d)", s.Category, y, n, vIdx[s.Category][y])
			}
		}
	}
}

func TestRenderContainsYearsAndCategories(t *testing.T) {
	out := Render("Figure 1", Aggregate(GenerateCVE(1802)))
	for _, want := range []string{"2012", "2017", "spatial", "temporal", "null-deref", "other"} {
		if !contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
