package campaign

// The judge runs one program through the campaign's three oracles, cheapest
// and most fundamental first:
//
//  1. Tier parity — the same program under tier-0 interpretation, forced
//     tier-1 compilation (threshold 1), and async tiering with forced OSR
//     must produce byte-identical observables: classification, report,
//     stdout, exit code, and the exact instruction count (the step-refund
//     ledger makes Steps tier-invariant by construction). Any difference is
//     a wrong-code or accounting bug in a tier.
//  2. Fault-schedule parity — with FailNth = 1..MaxNth injected allocation
//     failures (counted on guest heap traffic, which is tier-portable), the
//     tiers must still agree. This is where error paths live, and error
//     paths are where the paper found its native-tool blind spots.
//  3. Cross-tool blind spots — a grammar-generated program the managed
//     engine flags as buggy while simulated ASan, Valgrind, and the bare
//     native machine all stay silent is a corpus-growth candidate (mutants
//     of corpus cases are excluded: their blind spots are already
//     cataloged by the detection matrix).
//
// Every oracle compares only deterministic observables. A wall-clock
// deadline or infrastructure error quarantines the seed — recording a
// non-reproducible verdict would poison the journal's determinism.

import (
	"fmt"
	"runtime"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/harness"
)

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// baseBudget is the tier-0 judgment budget: deterministic step bound, a
// guest heap ceiling so a mutant cannot balloon the host, and the
// campaign's context for cooperative cancellation.
func (c *campaign) baseBudget() harness.CaseBudget {
	return harness.CaseBudget{
		MaxSteps:     c.opts.MaxSteps,
		Timeout:      c.opts.Timeout,
		MaxHeapBytes: 64 << 20,
		Ctx:          c.opts.Ctx,
		NoCodeCache:  c.opts.NoCodeCache,
		NoCache:      c.opts.NoCache,
	}
}

// tierBudgets returns the three tier configurations the parity oracle
// compares, tier-0 first.
func (c *campaign) tierBudgets() []struct {
	name string
	b    harness.CaseBudget
} {
	b0 := c.baseBudget()
	b1 := b0
	b1.JIT, b1.JITThreshold = true, 1
	b2 := b1
	b2.JITAsync, b2.OSR, b2.OSRThreshold = true, true, 1
	return []struct {
		name string
		b    harness.CaseBudget
	}{{"tier-0", b0}, {"tier-1", b1}, {"async+osr", b2}}
}

// judge classifies one program. The returned record is a pure function of
// (idx, seed, info, options): it never depends on wall-clock time, worker
// identity, or scheduling.
func (c *campaign) judge(idx int, seed uint64, info gen.Info, genName string) seedRecord {
	rec := seedRecord{T: "seed", I: idx, S: seed, Gen: genName, Bug: info.Bug}
	src := info.Source
	tiers := c.tierBudgets()

	// One compiled artifact serves every managed oracle below: the three
	// tier-parity runs and the 2×MaxNth fault-parity runs all share
	// SafeSulong's pipeline flavor, so the front end runs once per program
	// instead of once per oracle run. Compile-stage failures classify
	// exactly as they did when tier-0's run compiled first.
	mod, bad := harness.CompileOutcome(src, harness.SafeSulong, tiers[0].b)
	if bad != nil {
		switch bad.Class {
		case "compile-error":
			// The front end refuses the program identically in every tier.
			// Grammar debt, not a finding.
			rec.C, rec.R = "reject", bad.Report
			return rec
		case "panic":
			return c.finish(rec, KindEnginePanic, "tier-0: "+bad.Report, src, func(s string) bool {
				return harness.RunSource(s, harness.SafeSulong, c.baseBudget()).Class == "panic"
			})
		default: // "error" and anything else non-deterministic
			rec.C, rec.R = "quarantine", "tier-0: "+bad.Report
			return rec
		}
	}
	// Compile once, run many, then release: after the verdict below, this
	// generated program never runs again, so retire its artifacts from the
	// process-wide caches instead of letting dead modules ride the LRU and
	// engine pool. Deferred so every early return (quarantine, divergence,
	// finding) releases too, after any minimization has finished.
	defer harness.ReleaseModule(mod)

	// Oracle 1: tier parity.
	outs := make([]harness.Outcome, len(tiers))
	for i, t := range tiers {
		o := harness.RunModule(mod, harness.SafeSulong, t.b)
		switch o.Class {
		case "deadline", "error":
			rec.C, rec.R = "quarantine", t.name+": "+o.Report
			return rec
		case "panic":
			b := t.b
			return c.finish(rec, KindEnginePanic, t.name+": "+o.Report, src, func(s string) bool {
				return harness.RunSource(s, harness.SafeSulong, b).Class == "panic"
			})
		}
		outs[i] = o
		if i > 0 && o.Signature() != outs[0].Signature() {
			b0, bt := tiers[0].b, t.b
			sig := fmt.Sprintf("%s vs tier-0: {%s} != {%s}", t.name, o.Signature(), outs[0].Signature())
			return c.finish(rec, KindTierDivergence, sig, src, func(s string) bool {
				a := harness.RunSource(s, harness.SafeSulong, b0)
				z := harness.RunSource(s, harness.SafeSulong, bt)
				return judgeable(a) && judgeable(z) && a.Signature() != z.Signature()
			})
		}
	}
	o0 := outs[0]

	// Oracle 2: fault-schedule parity, tier-0 vs forced tier-1, for every
	// schedule that can actually fire (the program allocates).
	if c.opts.MaxNth > 0 && o0.HeapAllocs > 0 {
		for nth := int64(1); nth <= c.opts.MaxNth; nth++ {
			plan := fault.Plan{FailNth: nth}
			f0b, f1b := tiers[0].b, tiers[1].b
			f0b.FaultPlan, f1b.FaultPlan = plan, plan
			f0 := harness.RunModule(mod, harness.SafeSulong, f0b)
			f1 := harness.RunModule(mod, harness.SafeSulong, f1b)
			for _, p := range []struct {
				name string
				o    harness.Outcome
				b    harness.CaseBudget
			}{{"tier-0", f0, f0b}, {"tier-1", f1, f1b}} {
				if p.o.Class == "deadline" || p.o.Class == "error" {
					rec.C, rec.R = "quarantine", fmt.Sprintf("failnth=%d %s: %s", nth, p.name, p.o.Report)
					return rec
				}
				if p.o.Class == "panic" {
					b := p.b
					sig := fmt.Sprintf("failnth=%d %s: %s", nth, p.name, p.o.Report)
					return c.finish(rec, KindFaultPanic, sig, src, func(s string) bool {
						return harness.RunSource(s, harness.SafeSulong, b).Class == "panic"
					})
				}
			}
			if f0.Signature() != f1.Signature() {
				sig := fmt.Sprintf("failnth=%d: tier-1 {%s} != tier-0 {%s}", nth, f1.Signature(), f0.Signature())
				return c.finish(rec, KindFaultDivergence, sig, src, func(s string) bool {
					a := harness.RunSource(s, harness.SafeSulong, f0b)
					z := harness.RunSource(s, harness.SafeSulong, f1b)
					return judgeable(a) && judgeable(z) && a.Signature() != z.Signature()
				})
			}
		}
	}

	// Oracle 3: cross-tool blind spots, grammar-generated programs only.
	if genName == "gen" && o0.Detected() {
		if c.blind(src) {
			kind0 := o0.Kind
			sig := fmt.Sprintf("SafeSulong: %s (%s); ASan, Valgrind, Native at -O0: silent", o0.Kind, o0.Report)
			return c.finish(rec, KindToolBlindSpot, sig, src, func(s string) bool {
				a := harness.RunSource(s, harness.SafeSulong, c.baseBudget())
				return a.Detected() && a.Kind == kind0 && c.blind(s)
			})
		}
	}

	rec.C = "ok"
	return rec
}

// blind reports whether every simulated native tool misses the program's
// bug without even crashing. Timeouts and errors count as "not blind" —
// the oracle only claims a blind spot it can fully demonstrate. The three
// -O0 native tools share one compiled artifact (same pipeline flavor and
// opt level); a compile failure counts as "not blind".
func (c *campaign) blind(src string) bool {
	b := c.baseBudget()
	mod, bad := harness.CompileOutcome(src, harness.ASanO0, b)
	if bad != nil {
		return false
	}
	defer harness.ReleaseModule(mod)
	for _, tool := range []harness.Tool{harness.ASanO0, harness.ValgrindO0, harness.NativeO0} {
		o := harness.RunModule(mod, tool, b)
		if o.Class != "clean" {
			return false
		}
	}
	return true
}

// judgeable reports whether an outcome is a deterministic verdict the
// minimizer may compare (wall-clock expiries and harness errors are not).
func judgeable(o harness.Outcome) bool {
	return o.Class != "deadline" && o.Class != "error"
}

// finish completes a finding record: classify, then minimize against the
// originating oracle within the campaign's budget.
func (c *campaign) finish(rec seedRecord, kind, sig, src string, check func(string) bool) seedRecord {
	rec.C, rec.K, rec.Sig, rec.Src = "find", kind, sig, src
	if c.opts.MinimizeBudget > 0 {
		rec.Min, rec.MinOK = minimize(src, check, c.opts.MinimizeBudget)
	}
	return rec
}
