package campaign

import (
	"fmt"
	"strings"
	"testing"
)

// minimize must shrink to exactly the lines the predicate needs, regardless
// of where they sit in the program.
func TestMinimizeFindsNeedles(t *testing.T) {
	var lines []string
	for i := 0; i < 40; i++ {
		switch i {
		case 7:
			lines = append(lines, "NEEDLE-A")
		case 31:
			lines = append(lines, "NEEDLE-B")
		default:
			lines = append(lines, fmt.Sprintf("filler %d", i))
		}
	}
	src := strings.Join(lines, "\n")
	calls := 0
	check := func(s string) bool {
		calls++
		return strings.Contains(s, "NEEDLE-A") && strings.Contains(s, "NEEDLE-B")
	}
	min, ok := minimize(src, check, 10_000)
	if !ok {
		t.Fatal("original did not re-verify")
	}
	if min != "NEEDLE-A\nNEEDLE-B" {
		t.Fatalf("minimized to %q", min)
	}
	if calls > 400 {
		t.Fatalf("minimizer spent %d checks on a 40-line input", calls)
	}
}

// A finding that does not reproduce on re-check is reported as flaky, not
// silently passed through.
func TestMinimizeFlagsFlakyFinding(t *testing.T) {
	min, ok := minimize("a\nb\nc", func(string) bool { return false }, 100)
	if ok || min != "" {
		t.Fatalf("minimize = (%q, %v), want flaky signal", min, ok)
	}
}

// An exhausted budget keeps the current (still-verified) candidate instead
// of overshooting.
func TestMinimizeHonorsBudget(t *testing.T) {
	src := strings.Repeat("x\n", 63) + "KEY"
	calls := 0
	min, ok := minimize(src, func(s string) bool {
		calls++
		return strings.Contains(s, "KEY")
	}, 5)
	if !ok {
		t.Fatal("original should verify within budget")
	}
	if calls > 5 {
		t.Fatalf("minimizer made %d checks, budget was 5", calls)
	}
	if !strings.Contains(min, "KEY") {
		t.Fatalf("budget-capped result lost the needle: %q", min)
	}
}
