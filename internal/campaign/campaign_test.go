package campaign

// The campaign's three resilience claims, each tested the hard way:
//
//   - Determinism: the journal and result of a fixed-seed campaign are
//     byte-identical at any worker count, after any interruption.
//   - Crash survival: a mid-campaign context cancel, a torn final record,
//     and a real kill -9 of the whole process all resume to the exact
//     journal an uninterrupted run would have produced.
//   - Supervision: workers that panic on the job are respawned, their
//     in-flight seed quarantined with a reason, and no goroutines leak.

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
)

// refOpts is the shared small campaign every resilience test compares
// against: 60 programs is enough to cross a finding (index 5 is a
// tool-blind-spot at this seed) and dozens of kill points. Minimization is
// disabled so judging paces the journal flushes evenly — a multi-second
// ddmin run would let the whole campaign finish into the reorder buffer
// before a mid-campaign cancel lands. (Find records with minimized sources
// round-trip through resume in TestCampaignFuzzCheck instead.)
func refOpts() Options {
	return Options{Seed: 0xFEED, Programs: 60, MaxNth: 1, Workers: 4, MinimizeBudget: -1}
}

var (
	refOnce   sync.Once
	refBytes  []byte
	refResult *Result
	refErr    error
)

// reference runs the uninterrupted campaign exactly once per test process
// and memoizes its journal bytes and result.
func reference(t *testing.T) ([]byte, *Result) {
	t.Helper()
	refOnce.Do(func() {
		dir, err := os.MkdirTemp("", "campaign-ref")
		if err != nil {
			refErr = err
			return
		}
		defer os.RemoveAll(dir)
		opts := refOpts()
		opts.Journal = filepath.Join(dir, "journal.jsonl")
		refResult, refErr = Run(opts)
		if refErr == nil {
			refBytes, refErr = os.ReadFile(opts.Journal)
		}
	})
	if refErr != nil {
		t.Fatal(refErr)
	}
	return refBytes, refResult
}

// TestCampaignResumeDeterminism: cancel a campaign mid-flight at one worker
// count, tear the journal's final record, resume at another worker count —
// and get the byte-identical journal and result of the uninterrupted run.
func TestCampaignResumeDeterminism(t *testing.T) {
	wantBytes, wantRes := reference(t)

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	opts := refOpts()
	opts.Workers = 2
	opts.Journal = path
	opts.Ctx = ctx
	opts.Progress = func(done, total int) {
		if done >= 20 {
			cancel()
		}
	}
	if _, err := Run(opts); err == nil {
		t.Fatal("cancelled campaign reported success")
	}

	// Simulate the kill -9 failure mode on top: tear the last record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 10 {
		t.Fatalf("interrupted journal too small: %d bytes", len(data))
	}
	if err := os.Truncate(path, int64(len(data)-7)); err != nil {
		t.Fatal(err)
	}

	resumed := refOpts()
	resumed.Workers = 7
	resumed.Journal = path
	resumed.Resume = true
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed == 0 || res.Judged == 0 {
		t.Fatalf("resume did not split work: resumed=%d judged=%d", res.Resumed, res.Judged)
	}
	gotBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(wantBytes) {
		t.Fatalf("resumed journal differs from uninterrupted journal:\n--- want %d bytes\n--- got %d bytes", len(wantBytes), len(gotBytes))
	}
	assertSameOutcome(t, wantRes, res)
}

// TestCampaignKillResume: a real kill -9 of a campaign subprocess, resumed
// in this process, lands on the byte-identical journal. With group commit
// the kill necessarily lands mid-batch: the helper has judged seeds beyond
// the last flushed batch that exist only in its memory, and the journal on
// disk ends at a batch boundary. The test asserts that quantum, then tears
// the flushed tail mid-line — emulating a kill during the batch write
// itself — and still requires the resume to rebuild the exact journal.
func TestCampaignKillResume(t *testing.T) {
	wantBytes, wantRes := reference(t)

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	cmd := exec.Command(os.Args[0], "-test.run=TestCampaignKillHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "CAMPAIGN_KILL_JOURNAL="+path)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill once the journal shows real progress but long before completion
	// (the helper runs single-worker, ~8x slower than the reference run).
	// The first group commit lands journalBatch+1 lines at once, so by the
	// time this poll fires the helper is buffering the next batch.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("helper made no progress before deadline")
		}
		data, _ := os.ReadFile(path)
		if strings.Count(string(data), "\n") >= 12 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no deferred cleanup runs
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// The durable journal must end at a group-commit boundary, short of the
	// full campaign: the records the helper judged past that boundary died
	// with it and must be re-derived by the resume.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	durable := strings.Count(string(data), "\n") - 1 // minus meta line
	if durable <= 0 || durable >= refOpts().Programs {
		t.Fatalf("kill did not land mid-campaign: %d durable records", durable)
	}
	if durable%journalBatch != 0 {
		t.Fatalf("durable journal ends off a batch boundary: %d records (batch %d)", durable, journalBatch)
	}
	// Tear the flushed tail mid-line: a kill can also land inside the batch
	// write, leaving a prefix of the batch plus a torn line.
	if err := os.Truncate(path, int64(len(data)-7)); err != nil {
		t.Fatal(err)
	}

	resumed := refOpts()
	resumed.Journal = path
	resumed.Resume = true
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed == 0 || res.Judged == 0 {
		t.Fatalf("kill did not interrupt mid-campaign: resumed=%d judged=%d", res.Resumed, res.Judged)
	}
	gotBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(wantBytes) {
		t.Fatalf("journal after kill -9 + resume differs from uninterrupted journal:\n--- want %d bytes\n--- got %d bytes", len(wantBytes), len(gotBytes))
	}
	assertSameOutcome(t, wantRes, res)
}

// TestCampaignKillHelper is the kill -9 victim: it runs the reference
// campaign single-worker against the journal named in the environment. It
// is skipped in normal test runs.
func TestCampaignKillHelper(t *testing.T) {
	path := os.Getenv("CAMPAIGN_KILL_JOURNAL")
	if path == "" {
		t.Skip("helper process for TestCampaignKillResume")
	}
	opts := refOpts()
	opts.Workers = 1
	opts.Journal = path
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
}

// assertSameOutcome compares everything a campaign promises to keep
// deterministic across interruption and worker counts.
func assertSameOutcome(t *testing.T, want, got *Result) {
	t.Helper()
	if got.Resumed+got.Judged != want.Resumed+want.Judged {
		t.Fatalf("judged totals differ: want %d, got %d", want.Resumed+want.Judged, got.Resumed+got.Judged)
	}
	if got.OK != want.OK || got.Rejects != want.Rejects {
		t.Fatalf("ok/rejects differ: want %d/%d, got %d/%d", want.OK, want.Rejects, got.OK, got.Rejects)
	}
	if !reflect.DeepEqual(got.Findings, want.Findings) {
		t.Fatalf("findings differ:\nwant %+v\ngot  %+v", want.Findings, got.Findings)
	}
	if !reflect.DeepEqual(got.Quarantined, want.Quarantined) {
		t.Fatalf("quarantines differ:\nwant %+v\ngot  %+v", want.Quarantined, got.Quarantined)
	}
}

// TestCampaignWorkerPanicStorm: a third of all judgments panic their
// worker. The supervisor quarantines every poisoned seed with its reason,
// respawns, finishes the campaign, and leaks no goroutines. The journal it
// writes is deterministic, so a second storm reproduces it byte-for-byte.
func TestCampaignWorkerPanicStorm(t *testing.T) {
	storm := func(journal string) *Result {
		opts := Options{
			Seed: 0xBAD, Programs: 48, Workers: 8, Journal: journal,
			hookJudge: func(idx int, seed uint64, info gen.Info) seedRecord {
				if idx%3 == 0 {
					panic(fmt.Sprintf("storm-%d", idx))
				}
				return seedRecord{T: "seed", I: idx, S: seed, C: "ok"}
			},
		}
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	before := runtime.NumGoroutine()
	dir := t.TempDir()
	res := storm(filepath.Join(dir, "a.jsonl"))

	if res.OK != 32 || len(res.Quarantined) != 16 {
		t.Fatalf("ok=%d quarantined=%d, want 32/16", res.OK, len(res.Quarantined))
	}
	for i, q := range res.Quarantined {
		wantIdx := i * 3
		if q.Index != wantIdx || q.Seed != gen.SeedAt(0xBAD, wantIdx) {
			t.Fatalf("quarantine %d = %+v, want index %d", i, q, wantIdx)
		}
		if want := "worker death: storm-" + strconv.Itoa(wantIdx); q.Reason != want {
			t.Fatalf("quarantine reason %q, want %q", q.Reason, want)
		}
	}

	// Every worker (original and respawned) must be gone.
	settleBy := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(settleBy) {
			t.Fatalf("goroutines leaked: %d before storm, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Determinism through the storm: same seeds, same journal bytes.
	storm(filepath.Join(dir, "b.jsonl"))
	a, _ := os.ReadFile(filepath.Join(dir, "a.jsonl"))
	b, _ := os.ReadFile(filepath.Join(dir, "b.jsonl"))
	if string(a) != string(b) {
		t.Fatalf("storm journals differ:\n%s\n---\n%s", a, b)
	}
}

// TestCampaignFuzzCheck is the `make fuzzcheck` gate: a fixed-seed campaign
// with the full oracle set (tier parity, FailNth 1..2 fault parity,
// cross-tool blind spots) must finish with zero hard findings, zero
// quarantines, and every finding minimized to a committed-corpus-sized
// program that re-verified against its oracle. FUZZCHECK_PROGRAMS scales
// the campaign (the Makefile gate runs 200; the default keeps plain
// `go test ./...` brisk).
func TestCampaignFuzzCheck(t *testing.T) {
	programs := 60
	if v := os.Getenv("FUZZCHECK_PROGRAMS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("FUZZCHECK_PROGRAMS=%q", v)
		}
		programs = n
	}
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	out := filepath.Join(t.TempDir(), "finds")
	res, err := Run(Options{
		Seed: 0xC0FFEE, Programs: programs, MaxNth: 2,
		Journal: path, OutDir: out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hard := res.Hard(); len(hard) > 0 {
		t.Fatalf("campaign found %d hard engine defects:\n%s", len(hard), res.Summary())
	}
	if len(res.Quarantined) > 0 {
		t.Fatalf("quarantined seeds in a deterministic-budget campaign:\n%s", res.Summary())
	}
	if res.Judged != programs {
		t.Fatalf("judged %d of %d", res.Judged, programs)
	}
	for _, f := range res.Findings {
		if !f.MinimizedOK {
			t.Fatalf("finding #%d (%s) did not re-verify under minimization — flaky oracle", f.Index, f.Kind)
		}
		if lines := strings.Count(f.Minimized, "\n") + 1; lines > 40 {
			t.Fatalf("finding #%d minimized to %d lines, want <= 40", f.Index, lines)
		}
		// Its intake file must exist and round-trip.
		data, err := os.ReadFile(filepath.Join(out, fmt.Sprintf("find-%06d-%s.json", f.Index, f.Kind)))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "\"verified\": true") {
			t.Fatalf("intake for finding #%d not marked verified:\n%s", f.Index, data)
		}
	}
	// The grammar must mostly produce accepted programs: rejects are
	// mutation debt, not generator debt.
	if res.Rejects > programs/5 {
		t.Fatalf("%d/%d programs rejected by the front end", res.Rejects, programs)
	}

	// A complete journal resumes as pure replay: no re-judging, identical
	// findings (minimized sources included), identical bytes on disk.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Run(Options{
		Seed: 0xC0FFEE, Programs: programs, MaxNth: 2,
		Journal: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Judged != 0 || replayed.Resumed != programs {
		t.Fatalf("complete-journal resume re-judged: judged=%d resumed=%d", replayed.Judged, replayed.Resumed)
	}
	if !reflect.DeepEqual(replayed.Findings, res.Findings) {
		t.Fatalf("findings changed across replay:\nwant %+v\ngot  %+v", res.Findings, replayed.Findings)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("replay modified the journal")
	}
}
