package campaign

// The journal is the campaign's crash-resilience substrate: an append-only
// JSONL file written strictly in index order and made durable by group
// commit — records accumulate in memory and reach stable storage as one
// write+fsync per batch (every journalBatch records, on Flush, and on
// Close). Because every record is a pure function of (campaign seed, index)
// and the write order is canonical, the journal of an interrupted-and-
// resumed campaign is byte-identical to the journal of one that never
// stopped — the resume test asserts exactly that, including after a kill -9
// that lands mid-batch: whatever prefix of the batch hit the disk survives
// (a torn final line is truncated), and the lost suffix is re-judged
// identically on resume.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// journalVersion gates resume across incompatible record schemas.
const journalVersion = 1

// metaRecord is the journal's first line: the campaign parameters that
// determine every subsequent record. Resume refuses a journal whose meta
// does not match the live options — continuing under different parameters
// would silently produce a franken-campaign no seed can reproduce.
type metaRecord struct {
	T           string `json:"t"` // "meta"
	V           int    `json:"v"`
	Seed        uint64 `json:"seed"`
	Programs    int    `json:"programs"`
	MaxNth      int64  `json:"maxnth"`
	MutateEvery int    `json:"mutateEvery"`
	MaxSteps    int64  `json:"maxSteps"`
	// MinimizeBudget and TimeoutNS are part of the identity too: both
	// change record contents (minimized sources, wall-clock quarantines),
	// so resuming under different values would break byte-identity.
	MinimizeBudget int   `json:"minimizeBudget"`
	TimeoutNS      int64 `json:"timeoutNs,omitempty"`
}

// seedRecord is one judged seed. Class "ok" (no divergence), "reject"
// (did not compile — grammar debt, not a finding), "quarantine" (the run
// was not judgeable: wall-clock deadline, infrastructure error, or the
// worker executing it died), or "find".
type seedRecord struct {
	T     string `json:"t"` // "seed"
	I     int    `json:"i"`
	S     uint64 `json:"s"`
	C     string `json:"c"`
	Gen   string `json:"gen,omitempty"`   // "gen" or "mut:<corpus case>"
	Bug   string `json:"bug,omitempty"`   // generator's injected-bug tag
	K     string `json:"k,omitempty"`     // finding kind
	Sig   string `json:"sig,omitempty"`   // divergence signature
	Src   string `json:"src,omitempty"`   // finding source, pre-minimization
	Min   string `json:"min,omitempty"`   // minimized source
	MinOK bool   `json:"minok,omitempty"` // minimizer re-verified the find
	R     string `json:"r,omitempty"`     // quarantine/reject reason
}

// journalBatch is the group-commit size: one write+fsync per this many
// records instead of one per record. The durability unit shrinks to a
// batch, but the correctness unit stays one line — a kill -9 mid-batch
// loses at most the unflushed suffix, which resume re-judges identically.
const journalBatch = 16

// journal is the open append handle. Writes go through appendRecord, which
// buffers marshaled lines and group-commits them: a record either made it
// to stable storage in full or the resume path truncates its torn remnant
// and re-derives it.
type journal struct {
	f       *os.File
	buf     []byte
	pending int
}

// createJournal starts a fresh journal with the meta header. Refuses to
// clobber an existing non-empty journal unless resume already vetted it —
// losing 9k judged seeds to a forgotten -resume flag is exactly the kind of
// loss this file exists to prevent.
func createJournal(path string, meta metaRecord) (*journal, error) {
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return nil, fmt.Errorf("journal %s already exists (%d bytes); pass Resume to continue it", path, st.Size())
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	j := &journal{f: f}
	line, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := j.appendLine(line); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// loadJournal reopens an interrupted journal for resume: it validates the
// meta header against the live campaign, parses every complete record, and
// truncates a torn final line (a kill -9 mid-write leaves one) so appends
// continue from the last durable record boundary. Records are returned in
// the canonical index order they were written in.
func loadJournal(path string, want metaRecord) (*journal, []seedRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(bufio.NewReader(f))
	if err != nil {
		f.Close()
		return nil, nil, err
	}

	var recs []seedRecord
	offset := int64(0) // end of the last complete, parseable line
	sawMeta := false
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail: no terminator, the write did not complete
		}
		line := data[:nl]
		if !sawMeta {
			var meta metaRecord
			if err := json.Unmarshal(line, &meta); err != nil || meta.T != "meta" {
				f.Close()
				return nil, nil, fmt.Errorf("journal %s: first line is not a meta record", path)
			}
			if meta != want {
				f.Close()
				return nil, nil, fmt.Errorf("journal %s was written by a different campaign (%+v); refusing to resume with %+v", path, meta, want)
			}
			sawMeta = true
		} else {
			var rec seedRecord
			if err := json.Unmarshal(line, &rec); err != nil || rec.T != "seed" {
				break // torn or corrupt line: everything after it is unusable
			}
			if rec.I != len(recs) {
				// Out-of-order index means the in-order writer invariant was
				// violated upstream; treat everything from here as unusable.
				break
			}
			recs = append(recs, rec)
		}
		offset += int64(nl) + 1
		data = data[nl+1:]
	}
	if !sawMeta {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: no complete meta record (empty or torn header); delete it and start over", path)
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &journal{f: f}, recs, nil
}

// appendRecord appends one seed record to the group-commit buffer and
// flushes when the batch fills. The record is durable only after the next
// Flush (batch boundary, cancellation, or Close).
func (j *journal) appendRecord(rec seedRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.buf = append(j.buf, line...)
	j.buf = append(j.buf, '\n')
	j.pending++
	if j.pending >= journalBatch {
		return j.Flush()
	}
	return nil
}

// Flush group-commits every buffered record: one write, one fsync. After
// Flush returns nil, a kill -9 cannot lose the flushed records, only tear
// a later batch.
func (j *journal) Flush() error {
	if j == nil || j.f == nil || j.pending == 0 {
		return nil
	}
	if _, err := j.f.Write(j.buf); err != nil {
		return err
	}
	j.buf = j.buf[:0]
	j.pending = 0
	return j.f.Sync()
}

// appendLine writes line + '\n' and fsyncs immediately — used for the meta
// header, which must be durable before any seed record can be.
func (j *journal) appendLine(line []byte) error {
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close flushes the pending batch and closes the file. The flush error
// wins: an unsyncable tail matters more than a failed close.
func (j *journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	ferr := j.Flush()
	cerr := j.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
