package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testMeta() metaRecord {
	return metaRecord{T: "meta", V: journalVersion, Seed: 7, Programs: 10, MaxNth: 2, MutateEvery: 4, MaxSteps: 100, MinimizeBudget: 300}
}

func writeJournalFile(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const metaLine = `{"t":"meta","v":1,"seed":7,"programs":10,"maxnth":2,"mutateEvery":4,"maxSteps":100,"minimizeBudget":300}` + "\n"

func TestJournalTornTailTruncated(t *testing.T) {
	path := writeJournalFile(t,
		metaLine,
		`{"t":"seed","i":0,"s":11,"c":"ok"}`+"\n",
		`{"t":"seed","i":1,"s":12,"c":"reject","r":"parse"}`+"\n",
		`{"t":"seed","i":2,"s":13,"c":"o`, // torn mid-write: no terminator
	)
	j, recs, err := loadJournal(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 2 || recs[0].C != "ok" || recs[1].C != "reject" {
		t.Fatalf("recs = %+v, want the 2 complete records", recs)
	}
	// The torn bytes are gone from disk and appends continue cleanly.
	// Appends are group-committed, so the record reaches disk on Flush.
	if err := j.appendRecord(seedRecord{T: "seed", I: 2, S: 13, C: "ok"}); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(path); strings.Count(string(data), "\n") != 3 {
		t.Fatalf("buffered record reached disk before Flush:\n%s", data)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), `"c":"o`+"\n") || strings.Count(string(data), "\n") != 4 {
		t.Fatalf("journal after truncate+append:\n%s", data)
	}
}

func TestJournalStopsAtCorruptLine(t *testing.T) {
	path := writeJournalFile(t,
		metaLine,
		`{"t":"seed","i":0,"s":11,"c":"ok"}`+"\n",
		"not json at all\n",
		`{"t":"seed","i":1,"s":12,"c":"ok"}`+"\n", // unreachable: after corruption
	)
	j, recs, err := loadJournal(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 1 {
		t.Fatalf("recs = %+v, want just the record before the corruption", recs)
	}
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), "not json") {
		t.Fatalf("corrupt bytes survived truncation:\n%s", data)
	}
}

func TestJournalStopsAtOutOfOrderIndex(t *testing.T) {
	path := writeJournalFile(t,
		metaLine,
		`{"t":"seed","i":0,"s":11,"c":"ok"}`+"\n",
		`{"t":"seed","i":5,"s":12,"c":"ok"}`+"\n", // in-order writer never does this
	)
	j, recs, err := loadJournal(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 1 {
		t.Fatalf("recs = %+v, want 1 (out-of-order tail discarded)", recs)
	}
}

func TestJournalRefusesMetaMismatch(t *testing.T) {
	path := writeJournalFile(t, metaLine)
	other := testMeta()
	other.Seed = 99
	if _, _, err := loadJournal(path, other); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("err = %v, want meta-mismatch refusal", err)
	}
}

func TestJournalRefusesTornMeta(t *testing.T) {
	path := writeJournalFile(t, `{"t":"meta","v":1`) // torn header, no newline
	if _, _, err := loadJournal(path, testMeta()); err == nil {
		t.Fatal("want error for torn meta header")
	}
}

func TestCreateJournalRefusesClobber(t *testing.T) {
	path := writeJournalFile(t, metaLine)
	if _, err := createJournal(path, testMeta()); err == nil || !strings.Contains(err.Error(), "Resume") {
		t.Fatalf("err = %v, want clobber refusal pointing at Resume", err)
	}
}
