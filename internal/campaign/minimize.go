package campaign

// Line-granular delta debugging (ddmin) over a finding's source, re-checked
// against the originating oracle after every candidate deletion. A raw
// generated program is ~60 lines of mostly-irrelevant checksum traffic; the
// minimizer shrinks it to the handful of lines the divergence actually
// needs, which is what gets committed to the corpus and what a human reads.
//
// The check function IS the oracle: minimization of a tier divergence
// re-runs both tiers on every candidate, so the shrunk program provably
// still diverges — a minimized case is a re-verified case by construction.

import "strings"

// minimize shrinks src to a 1-minimal set of lines that still satisfies
// check, spending at most budget check invocations. The returned ok is true
// when the original finding re-verified (check(src) held); when it did not
// — the finding is flaky — minimize returns ("", false) and the caller
// keeps the raw source with a flakiness mark.
func minimize(src string, check func(string) bool, budget int) (string, bool) {
	calls := 0
	test := func(lines []string) bool {
		if calls >= budget {
			return false
		}
		calls++
		return check(strings.Join(lines, "\n"))
	}

	lines := strings.Split(src, "\n")
	if !test(lines) {
		return "", false
	}

	// Classic ddmin: partition into n chunks, try each chunk alone, then
	// each complement, refining granularity until 1-minimal.
	n := 2
	for len(lines) >= 2 {
		if n > len(lines) {
			n = len(lines)
		}
		chunks := split(lines, n)
		reduced := false
		// Complements first: deleting one chunk at a time converges much
		// faster on programs where most lines are irrelevant.
		for i := range chunks {
			cand := without(chunks, i)
			if test(cand) {
				lines = cand
				n--
				if n < 2 {
					n = 2
				}
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		// Subsets: a single chunk alone suffices.
		if n > 2 {
			for _, chunk := range chunks {
				if len(chunk) < len(lines) && test(chunk) {
					lines = chunk
					n = 2
					reduced = true
					break
				}
			}
			if reduced {
				continue
			}
		}
		if n >= len(lines) {
			break // 1-minimal
		}
		n *= 2
		if calls >= budget {
			break
		}
	}

	// Final polish: drop now-empty lines that survived as chunk residue.
	var out []string
	for _, l := range lines {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	if len(out) < len(lines) {
		if test(out) {
			lines = out
		}
	}
	return strings.Join(lines, "\n"), true
}

// split partitions lines into n nearly-equal contiguous chunks.
func split(lines []string, n int) [][]string {
	chunks := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		lo := i * len(lines) / n
		hi := (i + 1) * len(lines) / n
		if lo < hi {
			chunks = append(chunks, lines[lo:hi])
		}
	}
	return chunks
}

// without concatenates every chunk except the i'th.
func without(chunks [][]string, i int) []string {
	var out []string
	for k, c := range chunks {
		if k != i {
			out = append(out, c...)
		}
	}
	return out
}
