// Package campaign is the crash-resilient differential fuzzing driver: it
// shards a splitmix64 seed space across supervised workers, judges every
// generated program with three oracles (tier parity, fault-schedule parity,
// cross-tool blind spots), journals progress to an append-only checkpoint
// file, and auto-minimizes every confirmed finding with delta debugging
// re-verified against the originating oracle.
//
// The paper's campaigns ran for months against real compilers; the lesson
// this package encodes is that the harness, not the engine, decides whether
// a long campaign survives. Three failure families are handled without
// stopping the run: a seed whose judgment panics or hangs is quarantined
// and its worker respawned; a campaign process that dies (kill -9 included)
// resumes from the journal byte-identically; and a finding too large to
// diagnose is shrunk to a corpus-shaped case before a human sees it.
//
// Determinism is the load-bearing property. Program number i is always
// gen.SeedAt(campaign, i) regardless of worker count or interruption;
// records are journaled strictly in index order through a reorder buffer;
// and every oracle compares only deterministic observables (step-budget
// timeouts, never wall-clock ones — a wall-clock expiry quarantines the
// seed instead of judging it).
package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/gen"
	"repro/internal/harness"
)

// Finding kinds, ordered by the oracle that produces them. The first four
// are "hard": they indicate an engine defect and fail the fuzzcheck gate.
// A blind spot is a capability result (the managed engine sees a bug the
// simulated native tools miss) — the corpus-growth channel, not a defect.
const (
	KindEnginePanic     = "engine-panic"     // contained compiler/engine panic
	KindTierDivergence  = "tier-divergence"  // tier-0 vs tier-1 vs async+OSR disagree
	KindFaultPanic      = "fault-panic"      // panic only under an injected-OOM schedule
	KindFaultDivergence = "fault-divergence" // tiers disagree under an injected-OOM schedule
	KindToolBlindSpot   = "tool-blind-spot"  // SafeSulong detects; ASan/Valgrind/Native silent
)

// Options configures one campaign. The zero value is not runnable: Seed
// identifies the campaign and Programs sizes it.
type Options struct {
	// Seed is the campaign's root seed. Program i's generator seed is
	// gen.SeedAt(Seed, i) — the whole campaign is reproducible from this
	// one number.
	Seed uint64
	// Programs is the number of seeds to judge.
	Programs int
	// Workers sizes the supervised pool (0 = GOMAXPROCS).
	Workers int
	// MaxNth sweeps fault schedules FailNth = 1..MaxNth over every program
	// that allocates (0 selects the default of 2; negative disables the
	// fault oracle).
	MaxNth int64
	// MutateEvery makes every k'th program a mutant of a corpus case
	// instead of a grammar-generated one (0 selects the default of 4;
	// negative disables mutation).
	MutateEvery int
	// MaxSteps bounds each judged run (0 selects the default of 2M steps —
	// generated programs terminate well under that; the bound exists so an
	// accidental non-terminating mutant is classified deterministically).
	MaxSteps int64
	// Timeout is a per-run wall-clock guard (0 = none). It is a liveness
	// backstop only: a run that hits it is quarantined, never judged,
	// because wall-clock outcomes are not reproducible.
	Timeout time.Duration
	// Journal, when non-empty, checkpoints every judged seed to this
	// append-only file; Resume continues an interrupted campaign from it.
	Journal string
	Resume  bool
	// OutDir, when non-empty, receives one corpus-shaped intake file per
	// finding (see corpus.IntakeCase).
	OutDir string
	// MinimizeBudget caps the oracle re-runs the per-finding minimizer may
	// spend (0 selects the default of 300; negative disables minimization).
	MinimizeBudget int
	// NoCodeCache opts every judged run out of the process-wide
	// executable-code cache and engine reuse pool (cold-baseline
	// benchmarking; see sulong.Config.NoCodeCache). Not part of the journal
	// identity: warm and cold runs produce byte-identical records.
	NoCodeCache bool
	// NoCache additionally bypasses the pipeline module cache, so every
	// judged program compiles from source — the fully cold baseline. Like
	// NoCodeCache, it never changes the journal.
	NoCache bool
	// Progress, when non-nil, is called after each seed is recorded in
	// index order (the same shape harness.SweepOptions.Progress uses).
	// Journal writes are group-committed, so a reported record is durable
	// at the next batch boundary, cancellation, or close. done counts
	// resumed seeds too, so a resumed campaign's bar starts where the
	// interrupted one stopped.
	Progress func(done, total int)
	// Ctx cancels the campaign cooperatively: in-flight runs are stopped at
	// the next block boundary, unjournaled results are discarded, and Run
	// returns ctx's error. The journal stays resumable.
	Ctx context.Context

	// hookJudge replaces the oracle pipeline in tests: supervision and
	// journaling are exercised against scripted verdicts (including ones
	// that panic the worker).
	hookJudge func(idx int, seed uint64, info gen.Info) seedRecord
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = defaultWorkers()
	}
	if o.MaxNth == 0 {
		o.MaxNth = 2
	}
	if o.MutateEvery == 0 {
		o.MutateEvery = 4
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 2_000_000
	}
	if o.MinimizeBudget == 0 {
		o.MinimizeBudget = 300
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	return o
}

func (o Options) meta() metaRecord {
	return metaRecord{
		T: "meta", V: journalVersion,
		Seed: o.Seed, Programs: o.Programs,
		MaxNth: o.MaxNth, MutateEvery: o.MutateEvery, MaxSteps: o.MaxSteps,
		MinimizeBudget: o.MinimizeBudget, TimeoutNS: int64(o.Timeout),
	}
}

// Finding is one confirmed divergence, panic, or blind spot.
type Finding struct {
	Index     int    `json:"index"`
	Seed      uint64 `json:"seed"`
	Kind      string `json:"kind"`
	Signature string `json:"signature"`
	Generator string `json:"generator"` // "gen" or "mut:<corpus case>"
	Bug       string `json:"bug,omitempty"`
	Source    string `json:"source"`
	Minimized string `json:"minimized,omitempty"`
	// MinimizedOK reports that the minimizer re-verified the shrunk program
	// against the originating oracle. False means the finding did not
	// reproduce when re-checked — a flakiness signal worth more than the
	// finding itself.
	MinimizedOK bool `json:"minimizedOk"`
}

// Quarantine is one seed the campaign could not judge: its run hit the
// wall-clock guard, failed with an infrastructure error, or took its worker
// down. The campaign records it and moves on.
type Quarantine struct {
	Index  int    `json:"index"`
	Seed   uint64 `json:"seed"`
	Reason string `json:"reason"`
}

// Result is the campaign's aggregate outcome, assembled in index order and
// therefore identical at any worker count.
type Result struct {
	Programs    int          `json:"programs"`
	Judged      int          `json:"judged"`  // seeds durably recorded this process
	Resumed     int          `json:"resumed"` // seeds replayed from the journal
	OK          int          `json:"ok"`
	Rejects     int          `json:"rejects"` // programs the front end refused
	Findings    []Finding    `json:"findings,omitempty"`
	Quarantined []Quarantine `json:"quarantined,omitempty"`
}

// Hard returns the findings that indicate engine defects (everything except
// tool blind spots). A campaign with hard findings fails the gate.
func (r *Result) Hard() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Kind != KindToolBlindSpot {
			out = append(out, f)
		}
	}
	return out
}

// Summary renders the campaign outcome for CLIs and logs.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d programs judged (%d resumed from journal)\n", r.Resumed+r.Judged, r.Resumed)
	fmt.Fprintf(&b, "  ok %d · rejects %d · quarantined %d · findings %d (%d hard)\n",
		r.OK, r.Rejects, len(r.Quarantined), len(r.Findings), len(r.Hard()))
	for _, f := range r.Findings {
		min := ""
		if f.MinimizedOK {
			min = fmt.Sprintf(" [minimized to %d lines]", strings.Count(f.Minimized, "\n")+1)
		}
		fmt.Fprintf(&b, "  FIND #%d seed=%#x %s%s\n    %s\n", f.Index, f.Seed, f.Kind, min, f.Signature)
	}
	for _, q := range r.Quarantined {
		fmt.Fprintf(&b, "  quarantined #%d seed=%#x: %s\n", q.Index, q.Seed, firstLine(q.Reason))
	}
	return b.String()
}

// workerDeath is a worker goroutine's exit notice. idx >= 0 means the
// worker died (panicked) while judging that seed; idx < 0 is a clean exit.
type workerDeath struct {
	idx    int
	seed   uint64
	reason string
}

type campaign struct {
	opts Options
}

// Run executes the campaign. It returns a non-nil Result even on error:
// everything durably recorded before the failure is in it.
func Run(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Programs <= 0 {
		return nil, fmt.Errorf("campaign: Programs must be positive")
	}
	c := &campaign{opts: opts}
	res := &Result{Programs: opts.Programs}

	// Journal setup: create fresh, or load + validate + truncate torn tail.
	var j *journal
	var replay []seedRecord
	if opts.Journal != "" {
		var err error
		if opts.Resume {
			if _, statErr := os.Stat(opts.Journal); statErr == nil {
				j, replay, err = loadJournal(opts.Journal, opts.meta())
			} else {
				j, err = createJournal(opts.Journal, opts.meta())
			}
		} else {
			j, err = createJournal(opts.Journal, opts.meta())
		}
		if err != nil {
			return res, err
		}
		defer j.Close()
	}
	for _, rec := range replay {
		c.apply(res, rec, true)
	}
	start := len(replay)
	if start > opts.Programs {
		return res, fmt.Errorf("campaign: journal has %d records but Programs is %d", start, opts.Programs)
	}
	if opts.Progress != nil && start > 0 {
		opts.Progress(start, opts.Programs)
	}

	// Supervised pool. Workers pull indices, judge them, and report either
	// a record or their own death; the supervisor respawns dead workers,
	// quarantines the seed they were holding, and writes records strictly
	// in index order through a reorder buffer.
	ctx := opts.Ctx
	todo := make(chan int)
	recs := make(chan seedRecord)
	deaths := make(chan workerDeath)
	spawn := func() { go c.worker(todo, recs, deaths) }
	for i := 0; i < opts.Workers; i++ {
		spawn()
	}
	// The feeder hands out indices in windows, each window reordered
	// longest-first by the shared duration model (keyed by generator name —
	// the only cost signal knowable before generating). The reorder buffer
	// restores strict index order for the journal, so the schedule changes
	// only which worker runs what when, never any output byte. Serial
	// campaigns keep the historical sequential feed.
	go func() {
		defer close(todo)
		window := 4 * opts.Workers
		for lo := start; lo < opts.Programs; lo += window {
			hi := lo + window
			if hi > opts.Programs {
				hi = opts.Programs
			}
			order := identityOrder(hi - lo)
			if opts.Workers > 1 {
				order = harness.CostOrder(hi-lo, func(k int) string {
					return "campaign|" + c.genNameAt(lo+k)
				})
			}
			for _, k := range order {
				if ctx.Err() != nil {
					return
				}
				select {
				case todo <- lo + k:
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	live := opts.Workers
	buf := map[int]seedRecord{}
	next := start
	need := opts.Programs - start
	var runErr error
	for got := 0; got < need && runErr == nil; {
		select {
		case rec := <-recs:
			buf[rec.I] = rec
			got++
		case d := <-deaths:
			if d.idx >= 0 {
				// The worker died mid-judgment: quarantine the seed it was
				// holding and keep the pool at full strength.
				buf[d.idx] = seedRecord{
					T: "seed", I: d.idx, S: d.seed,
					C: "quarantine", R: "worker death: " + d.reason,
				}
				got++
				spawn()
			} else {
				live--
			}
		case <-ctx.Done():
			runErr = context.Cause(ctx)
		}
		// Flush the reorder buffer: only the contiguous prefix is durable.
		for runErr == nil {
			rec, ok := buf[next]
			if !ok {
				break
			}
			if j != nil {
				if err := j.appendRecord(rec); err != nil {
					runErr = fmt.Errorf("campaign: journal write: %w", err)
					break
				}
			}
			delete(buf, next)
			next++
			c.apply(res, rec, false)
			if opts.Progress != nil {
				opts.Progress(next, opts.Programs)
			}
		}
	}

	// Wind down: the feeder closes todo (ctx or exhaustion), workers finish
	// their in-flight seed and exit. Late results and deaths are discarded
	// without respawning — anything not yet journaled is re-judged
	// identically by a resume.
	for live > 0 {
		select {
		case <-recs:
		case <-deaths:
			live--
		}
	}
	// Group-commit the pending batch before returning — cancellation and
	// exhaustion both land here, so every record the result reports is
	// durable when Run returns (Close would flush too, but its deferred
	// error is unobservable).
	if j != nil {
		if err := j.Flush(); err != nil && runErr == nil {
			runErr = fmt.Errorf("campaign: journal flush: %w", err)
		}
	}
	return res, runErr
}

// identityOrder is the 0..n-1 permutation (the untrained/serial feed order).
func identityOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// apply folds one in-order record into the result. replayed marks records
// read back from the journal on resume.
func (c *campaign) apply(res *Result, rec seedRecord, replayed bool) {
	if replayed {
		res.Resumed++
	} else {
		res.Judged++
	}
	switch rec.C {
	case "ok":
		res.OK++
	case "reject":
		res.Rejects++
	case "quarantine":
		res.Quarantined = append(res.Quarantined, Quarantine{Index: rec.I, Seed: rec.S, Reason: rec.R})
	case "find":
		f := Finding{
			Index: rec.I, Seed: rec.S, Kind: rec.K, Signature: rec.Sig,
			Generator: rec.Gen, Bug: rec.Bug,
			Source: rec.Src, Minimized: rec.Min, MinimizedOK: rec.MinOK,
		}
		res.Findings = append(res.Findings, f)
		if !replayed && c.opts.OutDir != "" {
			c.writeIntake(f)
		}
	}
}

// writeIntake emits the finding as a corpus-shaped intake file. Best-effort:
// the journal is the durable record; the intake file is a convenience.
func (c *campaign) writeIntake(f Finding) {
	src, verified := f.Minimized, f.MinimizedOK
	if src == "" {
		src, verified = f.Source, false
	}
	ic := corpus.IntakeCase{
		Name:      fmt.Sprintf("fuzz-%s-%#x", f.Kind, f.Seed),
		Seed:      f.Seed,
		Generator: f.Generator,
		Class:     f.Kind,
		Signature: f.Signature,
		Bug:       f.Bug,
		Verified:  verified,
		Source:    src,
	}
	data, err := json.MarshalIndent(ic, "", "  ")
	if err != nil {
		return
	}
	_ = os.MkdirAll(c.opts.OutDir, 0o755)
	path := filepath.Join(c.opts.OutDir, fmt.Sprintf("find-%06d-%s.json", f.Index, f.Kind))
	_ = os.WriteFile(path, append(data, '\n'), 0o644)
}

// worker judges indices until todo closes. A panic anywhere in judgment —
// the generator, the oracles, the minimizer — becomes a death notice
// carrying the in-flight seed, so the supervisor can quarantine it and
// respawn; the campaign itself never unwinds.
func (c *campaign) worker(todo <-chan int, recs chan<- seedRecord, deaths chan<- workerDeath) {
	cur, curSeed := -1, uint64(0)
	defer func() {
		if r := recover(); r != nil {
			deaths <- workerDeath{idx: cur, seed: curSeed, reason: fmt.Sprint(r)}
			return
		}
		deaths <- workerDeath{idx: -1}
	}()
	for idx := range todo {
		cur, curSeed = idx, gen.SeedAt(c.opts.Seed, idx)
		recs <- c.runOne(idx, curSeed)
		cur = -1
	}
}

// genNameAt names program idx's generator without generating it: mutants
// are selected by index and corpus slot alone. The feeder uses this as the
// scheduling key — the only cost signal available before a seed runs.
func (c *campaign) genNameAt(idx int) string {
	if c.opts.MutateEvery > 0 && (idx+1)%c.opts.MutateEvery == 0 {
		cases := corpus.All()
		seed := gen.SeedAt(c.opts.Seed, idx)
		return "mut:" + cases[int(seed%uint64(len(cases)))].Name
	}
	return "gen"
}

// runOne generates (or mutates) program idx and judges it, feeding the
// judgment duration back into the shared scheduling model.
func (c *campaign) runOne(idx int, seed uint64) seedRecord {
	var info gen.Info
	genName := c.genNameAt(idx)
	if strings.HasPrefix(genName, "mut:") {
		cases := corpus.All()
		info = gen.Mutate(cases[int(seed%uint64(len(cases)))].Source, seed)
	} else {
		info = gen.Generate(seed)
	}
	if c.opts.hookJudge != nil {
		return c.opts.hookJudge(idx, seed, info)
	}
	start := time.Now()
	rec := c.judge(idx, seed, info, genName)
	harness.ObserveCost("campaign|"+genName, time.Since(start))
	return rec
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
