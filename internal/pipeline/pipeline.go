// Package pipeline is the staged compilation pipeline behind the sulong
// facade. It decomposes cc.Compile's monolithic front end into explicit,
// individually-timed stages
//
//	assemble → preprocess → parse → lower (typecheck/codegen) → native-opt → verify
//
// and puts a concurrency-safe, content-addressed module cache in front of
// them. The cache is keyed by (file-set hash, engine flavor, opt level), so
// the libc+user translation unit for a given source compiles exactly once
// per flavor; every later run — including the corpus×engine evaluation
// matrix fanned out across goroutines — is a cache hit that shares the same
// immutable *ir.Module.
//
// Sharing is sound because no engine mutates a compiled module: the managed
// interpreter materializes globals into its own Objects, the native machine
// copies initializers into flat memory, and the tier-1 JIT clones a
// function before optimizing it. The only mutating consumer is
// internal/opt, which the pipeline runs on a private Clone() of the cached
// front-end module before publishing the per-opt-level result. A -race test
// over the full engine matrix (TestConcurrentRunAllEngines) enforces the
// invariant.
package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cc"
	"repro/internal/ir"
	"repro/internal/libc"
	"repro/internal/opt"
)

// Flavor selects the toolchain view of a translation unit — the paper's
// two compilation pipelines (§3.1).
type Flavor int

const (
	// FlavorManaged links the bundled C libc into the unit and wraps it for
	// the managed engine (Safe Sulong's view). OptLevel is ignored: Safe
	// Sulong always executes unoptimized IR.
	FlavorManaged Flavor = iota
	// FlavorNative compiles the user program alone (libc is "precompiled"
	// nlibc) and runs the optimizer at the requested level.
	FlavorNative
)

var flavorNames = [...]string{FlavorManaged: "managed", FlavorNative: "native"}

func (f Flavor) String() string {
	if f < 0 || int(f) >= len(flavorNames) {
		return fmt.Sprintf("Flavor(%d)", int(f))
	}
	return flavorNames[f]
}

// Request describes one translation unit to compile.
type Request struct {
	// Source is the user program (becomes user.c).
	Source string
	// ExtraFiles adds include-able files to the unit.
	ExtraFiles map[string]string
	Flavor     Flavor
	// OptLevel is the native-side optimization level (0 or 3); ignored for
	// FlavorManaged.
	OptLevel int
	// Bare skips the native-opt stage entirely (not even the -O0 backend
	// fold), yielding the raw front-end module. Only meaningful for
	// FlavorNative; used by sulong.CompileBare.
	Bare bool
	// Hardened compiles the managed libc with __SS_HARDENED: the bulk-write
	// string functions consult _bounds_of and truncate at the destination's
	// end instead of overflowing. Ignored for FlavorNative (its hardening
	// lives in the precompiled nlibc, selected at machine construction).
	// The flag changes the unit's contents, so the content hash keys
	// hardened and plain builds to distinct cache entries automatically.
	Hardened bool
}

// Key is the content address of a compiled module: the SHA-256 of the
// complete input file set plus the engine flavor and opt level.
type Key struct {
	Hash     string
	Flavor   Flavor
	OptLevel int
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/O%d", k.Hash[:12], k.Flavor, k.OptLevel)
}

// Stage names, in pipeline order.
const (
	StageAssemble   = "assemble"
	StagePreprocess = "preprocess"
	StageParse      = "parse"
	StageLower      = "lower"
	StageNativeOpt  = "native-opt"
	StageVerify     = "verify"
)

// StageTiming records how long one pipeline stage took.
type StageTiming struct {
	Stage    string
	Duration time.Duration
}

// Result is the outcome of a pipeline compile.
type Result struct {
	// Module is the compiled unit. It is shared across all callers that
	// compiled the same Key and MUST be treated as immutable; callers that
	// need to mutate (optimizer experiments, IR surgery) must Clone() it.
	Module *ir.Module
	Key    Key
	// CacheHit reports whether Module came out of the cache without any
	// front-end work.
	CacheHit bool
	// Stages holds per-stage wall-clock timings for the work actually
	// performed (empty on a cache hit).
	Stages []StageTiming
}

// ---- stages ----

// Assemble is stage 0: it builds the translation unit's file set the way
// the flavor's toolchain would (the paper's Fig. 4: libc.c + program.c for
// the managed engine; program.c alone for the native one) and returns the
// main file name.
func Assemble(req Request) (mainFile string, files map[string]string) {
	files = libc.Files()
	for k, v := range req.ExtraFiles {
		files[k] = v
	}
	files["user.c"] = req.Source
	if req.Flavor == FlavorManaged {
		unit := libc.WrapProgram("user.c")
		if req.Hardened {
			unit = "#define __SS_HARDENED 1\n" + unit
		}
		files["__program.c"] = unit
		return "__program.c", files
	}
	return "user.c", files
}

// Fingerprint content-addresses a translation unit: SHA-256 over the sorted
// (name, contents) pairs plus the main file name, with length framing so
// concatenation ambiguities cannot collide.
func Fingerprint(mainFile string, files map[string]string) string {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	var lenBuf [8]byte
	writeFramed := func(s string) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	writeFramed(mainFile)
	for _, name := range names {
		writeFramed(name)
		writeFramed(files[name])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// NativeOpt is the native-side optimization stage. It mutates mod in place,
// so the cache only ever runs it on a private clone. Level 0 still applies
// the backend constant-global fold the paper caught Clang doing at -O0
// (Fig. 13); level >= 2 runs the full pipeline.
func NativeOpt(mod *ir.Module, optLevel int) {
	if optLevel >= 2 {
		opt.RunO3(mod)
	} else {
		opt.RunO0(mod)
	}
}

// CompileUncached runs every stage for req with no cache interaction and
// returns a module the caller owns exclusively.
func CompileUncached(req Request) (*ir.Module, []StageTiming, error) {
	var timings []StageTiming
	timed := func(stage string, f func() error) error {
		t0 := time.Now()
		err := f()
		timings = append(timings, StageTiming{Stage: stage, Duration: time.Since(t0)})
		return err
	}

	var (
		mainFile string
		files    map[string]string
		toks     []cc.Token
		prog     *cc.Program
		mod      *ir.Module
		err      error
	)
	_ = timed(StageAssemble, func() error {
		mainFile, files = Assemble(req)
		return nil
	})
	if err = timed(StagePreprocess, func() error {
		toks, err = cc.Preprocess(mainFile, files, cc.Predefined(nil))
		return err
	}); err != nil {
		return nil, timings, err
	}
	if err = timed(StageParse, func() error {
		prog, err = cc.ParseProgram(toks)
		return err
	}); err != nil {
		return nil, timings, err
	}
	if err = timed(StageLower, func() error {
		mod, err = cc.Lower(prog, mainFile)
		return err
	}); err != nil {
		return nil, timings, err
	}
	if req.Flavor == FlavorNative && !req.Bare {
		_ = timed(StageNativeOpt, func() error {
			NativeOpt(mod, req.OptLevel)
			return nil
		})
	}
	if err = timed(StageVerify, func() error {
		if verr := ir.Verify(mod); verr != nil {
			return fmt.Errorf("pipeline: generated invalid IR: %w", verr)
		}
		return nil
	}); err != nil {
		return nil, timings, err
	}
	return mod, timings, nil
}

// ---- cache ----

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// HitRate is Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	ready chan struct{} // closed when mod/err are final
	mod   *ir.Module
	err   error
	// stages records the work done by the goroutine that filled the entry.
	stages []StageTiming
}

// Cache is a concurrency-safe, content-addressed module cache. Concurrent
// requests for the same Key are coalesced: one goroutine compiles, the rest
// block on the entry and then share the resulting module.
//
// Internally it holds two maps: front-end entries keyed by (hash, flavor)
// — the expensive preprocess/parse/lower work, shared by every opt level —
// and published modules keyed by the full (hash, flavor, opt level).
type Cache struct {
	mu       sync.Mutex
	frontend map[Key]*entry // OptLevel field fixed to frontendLevel
	modules  map[Key]*entry

	hits   atomic.Uint64
	misses atomic.Uint64
}

// frontendLevel marks front-end (pre-opt) cache entries.
const frontendLevel = -1

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{frontend: map[Key]*entry{}, modules: map[Key]*entry{}}
}

// Default is the process-wide cache the sulong facade compiles through.
var Default = NewCache()

// normalizeKey canonicalizes a request's cache coordinates so equivalent
// requests land on the same entry.
func normalizeKey(req Request, hash string) Key {
	k := Key{Hash: hash, Flavor: req.Flavor, OptLevel: req.OptLevel}
	if req.Flavor == FlavorManaged {
		k.OptLevel = 0 // Safe Sulong always runs unoptimized IR
	} else if req.Bare {
		k.OptLevel = frontendLevel // the raw front-end module
	} else if k.OptLevel >= 2 {
		k.OptLevel = 3
	} else {
		k.OptLevel = 0
	}
	return k
}

// lookup finds or creates an entry in m. It reports whether the caller must
// fill (and close) the entry.
func (c *Cache) lookup(m map[Key]*entry, k Key) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := m[k]; ok {
		return e, false
	}
	e := &entry{ready: make(chan struct{})}
	m[k] = e
	return e, true
}

// fill publishes a result into an entry and wakes all waiters.
func (e *entry) fill(mod *ir.Module, stages []StageTiming, err error) {
	e.mod, e.stages, e.err = mod, stages, err
	close(e.ready)
}

// frontendModule returns the shared post-lower (pre-opt) module for req,
// compiling it at most once per (hash, flavor).
func (c *Cache) frontendModule(req Request, hash string) (*entry, error) {
	fk := Key{Hash: hash, Flavor: req.Flavor, OptLevel: frontendLevel}
	e, fillIt := c.lookup(c.frontend, fk)
	if fillIt {
		bare := req
		bare.Bare = true
		mod, stages, err := CompileUncached(bare)
		if err == nil {
			// Content-address the unit before publication (full input-set
			// hash, not the display-truncated Key.String), so downstream
			// caches — the executable-code cache keys tier-1 units by it —
			// never pay a printed-IR rehash per module.
			mod.ContentID = fmt.Sprintf("%s/%s/O%d", hash, fk.Flavor, fk.OptLevel)
		}
		e.fill(mod, stages, err)
	}
	<-e.ready
	return e, e.err
}

// Compile resolves req through the cache. On a hit the returned Result
// shares the cached module (immutable by contract); on a miss exactly one
// goroutine runs the missing stages while concurrent requests for the same
// key wait and then count as hits of the freshly published entry.
func (c *Cache) Compile(req Request) (*Result, error) {
	mainFile, files := Assemble(req)
	hash := Fingerprint(mainFile, files)
	key := normalizeKey(req, hash)

	e, fillIt := c.lookup(c.modules, key)
	if !fillIt {
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		c.hits.Add(1)
		return &Result{Module: e.mod, Key: key, CacheHit: true}, nil
	}

	c.misses.Add(1)
	mod, stages, err := c.build(req, hash, key)
	e.fill(mod, stages, err)
	if err != nil {
		return nil, err
	}
	return &Result{Module: mod, Key: key, Stages: stages}, nil
}

// build runs the stages a miss needs: the (possibly cached) front end,
// then — for optimized native flavors — a clone + native-opt + verify.
func (c *Cache) build(req Request, hash string, key Key) (*ir.Module, []StageTiming, error) {
	fe, err := c.frontendModule(req, hash)
	if err != nil {
		return nil, nil, err
	}
	stages := append([]StageTiming(nil), fe.stages...)
	if key.OptLevel == frontendLevel || req.Flavor == FlavorManaged {
		// The front-end module is the final artifact.
		return fe.mod, stages, nil
	}
	// Native flavor at a concrete opt level: optimize a private clone so the
	// shared front-end module stays pristine.
	t0 := time.Now()
	mod := fe.mod.Clone()
	NativeOpt(mod, key.OptLevel)
	stages = append(stages, StageTiming{Stage: StageNativeOpt, Duration: time.Since(t0)})
	t0 = time.Now()
	if verr := ir.Verify(mod); verr != nil {
		return nil, stages, fmt.Errorf("pipeline: optimizer produced invalid IR: %w", verr)
	}
	stages = append(stages, StageTiming{Stage: StageVerify, Duration: time.Since(t0)})
	return mod, stages, nil
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.modules) + len(c.frontend)
	c.mu.Unlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Release drops every published entry whose module is mod. Drivers that
// retire a module for good (the fuzzing-campaign judge) call it so one-shot
// programs do not accumulate in the cache; a subsequent Compile of the same
// source simply misses and recompiles. Entries still being filled are left
// alone — releasing mid-flight would race the fill, and the filling
// goroutine's waiters need the entry to resolve.
func (c *Cache) Release(mod *ir.Module) {
	if mod == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.modules {
		select {
		case <-e.ready:
			if e.mod != mod {
				continue
			}
			delete(c.modules, k)
			// The front-end entry behind a native-flavor module holds a
			// different *ir.Module (opt levels build from clones), so it is
			// found by key, not by pointer.
			fk := Key{Hash: k.Hash, Flavor: k.Flavor, OptLevel: frontendLevel}
			if fe, ok := c.frontend[fk]; ok {
				select {
				case <-fe.ready:
					delete(c.frontend, fk)
				default:
				}
			}
		default:
		}
	}
}

// Reset drops every entry and zeroes the counters (tests and cold-start
// benchmarks).
func (c *Cache) Reset() {
	c.mu.Lock()
	c.frontend = map[Key]*entry{}
	c.modules = map[Key]*entry{}
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// Compile resolves req through the process-wide Default cache.
func Compile(req Request) (*Result, error) { return Default.Compile(req) }
