package pipeline

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ir"
)

const testSrc = `#include <stdio.h>
int main(void) { printf("hi\n"); return 0; }`

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache()
	req := Request{Source: testSrc, Flavor: FlavorManaged}

	r1, err := c.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Error("first compile must be a miss")
	}
	if len(r1.Stages) == 0 {
		t.Error("miss should report stage timings")
	}
	r2, err := c.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Error("second compile must be a hit")
	}
	if r2.Module != r1.Module {
		t.Error("cache hit must share the identical module")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestKeySeparation(t *testing.T) {
	c := NewCache()
	managed, err := c.Compile(Request{Source: testSrc, Flavor: FlavorManaged})
	if err != nil {
		t.Fatal(err)
	}
	nativeO0, err := c.Compile(Request{Source: testSrc, Flavor: FlavorNative, OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	nativeO3, err := c.Compile(Request{Source: testSrc, Flavor: FlavorNative, OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := c.Compile(Request{Source: testSrc, Flavor: FlavorNative, Bare: true})
	if err != nil {
		t.Fatal(err)
	}
	mods := map[string]*ir.Module{
		"managed": managed.Module, "nativeO0": nativeO0.Module,
		"nativeO3": nativeO3.Module, "bare": bare.Module,
	}
	seen := map[*ir.Module]string{}
	for name, m := range mods {
		if prev, dup := seen[m]; dup {
			t.Errorf("%s and %s share a module; keys must separate them", prev, name)
		}
		seen[m] = name
	}
	// Managed ignores OptLevel: O3 managed is the same entry as O0 managed.
	managedO3, err := c.Compile(Request{Source: testSrc, Flavor: FlavorManaged, OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if managedO3.Module != managed.Module || !managedO3.CacheHit {
		t.Error("managed flavor must normalize OptLevel into a single entry")
	}
	// OptLevel 2 and 3 normalize to the same native pipeline.
	nativeO2, err := c.Compile(Request{Source: testSrc, Flavor: FlavorNative, OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if nativeO2.Module != nativeO3.Module || !nativeO2.CacheHit {
		t.Error("opt levels >= 2 must share the O3 entry")
	}
}

func TestOptLevelsShareFrontend(t *testing.T) {
	c := NewCache()
	if _, err := c.Compile(Request{Source: testSrc, Flavor: FlavorNative, OptLevel: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(Request{Source: testSrc, Flavor: FlavorNative, OptLevel: 3}); err != nil {
		t.Fatal(err)
	}
	// Two module entries plus one shared front-end entry: the O3 compile
	// must not have re-run preprocess/parse/lower.
	s := c.Stats()
	if s.Entries != 3 {
		t.Errorf("entries = %d, want 3 (two modules + one shared frontend)", s.Entries)
	}
}

func TestConcurrentCompilesCoalesce(t *testing.T) {
	c := NewCache()
	req := Request{Source: testSrc, Flavor: FlavorManaged}
	const n = 16
	mods := make([]*ir.Module, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			res, err := c.Compile(req)
			if err != nil {
				t.Error(err)
				return
			}
			mods[i] = res.Module
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if mods[i] != mods[0] {
			t.Fatalf("goroutine %d got a different module", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (singleflight)", s.Misses)
	}
	if s.Hits != n-1 {
		t.Errorf("hits = %d, want %d", s.Hits, n-1)
	}
}

func TestStageTimingsRecorded(t *testing.T) {
	c := NewCache()
	res, err := c.Compile(Request{Source: testSrc, Flavor: FlavorNative, OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		StageAssemble: false, StagePreprocess: false, StageParse: false,
		StageLower: false, StageNativeOpt: false, StageVerify: false,
	}
	for _, st := range res.Stages {
		if _, ok := want[st.Stage]; ok {
			want[st.Stage] = true
		}
	}
	for stage, seen := range want {
		if !seen {
			t.Errorf("stage %q missing from timings %v", stage, res.Stages)
		}
	}
}

func TestCompileErrorPropagatesToWaiters(t *testing.T) {
	c := NewCache()
	req := Request{Source: "int main(void) { return undeclared; }", Flavor: FlavorManaged}
	if _, err := c.Compile(req); err == nil {
		t.Fatal("expected compile error")
	}
	// The error is cached too: the retry observes the same failure without
	// counting as a hit.
	if _, err := c.Compile(req); err == nil {
		t.Fatal("expected cached compile error")
	}
	if s := c.Stats(); s.Hits != 0 {
		t.Errorf("error lookups must not count as hits, got %+v", s)
	}
}

func TestFingerprintFraming(t *testing.T) {
	a := Fingerprint("m.c", map[string]string{"m.c": "ab", "x": "c"})
	b := Fingerprint("m.c", map[string]string{"m.c": "a", "x": "bc"})
	if a == b {
		t.Error("length framing must keep shifted contents distinct")
	}
	c1 := Fingerprint("m.c", map[string]string{"m.c": "int main;"})
	c2 := Fingerprint("m.c", map[string]string{"m.c": "int main;"})
	if c1 != c2 {
		t.Error("fingerprint must be deterministic")
	}
	if Fingerprint("a.c", map[string]string{"a.c": "x", "b.c": "x"}) ==
		Fingerprint("b.c", map[string]string{"a.c": "x", "b.c": "x"}) {
		t.Error("main file must be part of the address")
	}
}

func TestExtraFilesAddressed(t *testing.T) {
	c := NewCache()
	src := `#include "cfg.h"
int main(void) { return LIMIT; }`
	r1, err := c.Compile(Request{Source: src, Flavor: FlavorNative,
		ExtraFiles: map[string]string{"cfg.h": "#define LIMIT 1\n"}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Compile(Request{Source: src, Flavor: FlavorNative,
		ExtraFiles: map[string]string{"cfg.h": "#define LIMIT 2\n"}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHit || r1.Module == r2.Module {
		t.Error("different ExtraFiles must produce different cache entries")
	}
}

// TestWarmCacheSpeedup is the acceptance criterion's >= 5x compile-path
// speedup on a warm cache, measured directly.
func TestWarmCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	c := NewCache()
	req := Request{Source: testSrc, Flavor: FlavorManaged}
	cold := timeCompile(t, c, req, 3, true)
	warm := timeCompile(t, c, req, 25, false)
	ratio := float64(cold) / float64(warm)
	t.Logf("cold %v, warm %v, speedup %.0fx", cold, warm, ratio)
	if ratio < 5 {
		t.Errorf("warm-cache speedup %.1fx, want >= 5x", ratio)
	}
}

func BenchmarkCompileColdCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCache()
		if _, err := c.Compile(Request{Source: testSrc, Flavor: FlavorManaged}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileWarmCache(b *testing.B) {
	c := NewCache()
	if _, err := c.Compile(Request{Source: testSrc, Flavor: FlavorManaged}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compile(Request{Source: testSrc, Flavor: FlavorManaged}); err != nil {
			b.Fatal(err)
		}
	}
}

func timeCompile(t *testing.T, c *Cache, req Request, iters int, reset bool) time.Duration {
	t.Helper()
	var total time.Duration
	for i := 0; i < iters; i++ {
		if reset {
			c.Reset()
		}
		t0 := time.Now()
		if _, err := c.Compile(req); err != nil {
			t.Fatal(err)
		}
		total += time.Since(t0)
	}
	return total / time.Duration(iters)
}
