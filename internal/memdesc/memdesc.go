// Package memdesc is the shared dynamic-type layer: one descriptor for the
// declared C type of an allocation, used by both execution families. The
// managed engine (internal/core) hangs a *Desc off every Object so typed
// accesses can be checked against the allocation's effective type; the
// native machine (internal/nativevm) keeps a Table mapping address ranges to
// the same descriptors so the introspection builtins and the hardened libc
// have a single source of truth for element kind and size bookkeeping.
//
// The descriptor is deliberately small — a C type name, an element size, a
// scalar kind class, and the byte spans occupied by union storage — because
// that is exactly the information the type-confusion checks need: a
// mismatched pointer cast is a size/name disagreement, a bad union read is a
// kind-class disagreement inside a union span, and a variadic argument
// mismatch is a kind-class disagreement against the promoted argument.
package memdesc

import (
	"sort"

	"repro/internal/ir"
)

// Kind is the scalar kind class of a stored value. The managed model allows
// ints and floats to reinterpret each other's *bytes*; the type plane
// additionally remembers which class was last stored into union storage and
// into variadic cells, so reading the other class back is reportable.
type Kind uint8

const (
	Unknown Kind = iota
	Int
	Float
	Ptr
)

var kindNames = [...]string{Unknown: "unknown", Int: "int", Float: "float", Ptr: "pointer"}

func (k Kind) String() string { return kindNames[k] }

// KindOf classifies an IR type into its scalar kind class. Aggregates and
// nil types classify Unknown (no single class).
func KindOf(ty ir.Type) Kind {
	switch ty.(type) {
	case *ir.IntType:
		return Int
	case *ir.FloatType:
		return Float
	case *ir.PtrType:
		return Ptr
	}
	return Unknown
}

// Range is a half-open byte span [Lo, Hi) of an allocation.
type Range struct {
	Lo, Hi int64
}

// Contains reports whether [lo, hi) lies inside the range.
func (r Range) Contains(lo, hi int64) bool { return lo >= r.Lo && hi <= r.Hi }

// Desc describes the declared (effective) type of an allocation or a cast
// target. Descriptors are immutable after construction and safe to share.
type Desc struct {
	// CType is the declared C type as the front end spelled it, e.g.
	// "struct config" or "double". Empty when the front end had nothing.
	CType string
	// Size is the size in bytes of one element of the declared type.
	Size int64
	// Kind is the scalar kind class of the element type; Unknown for
	// aggregates.
	Kind Kind
	// Unions lists the byte spans of one element that are union storage
	// (all members at one offset). Empty for union-free types.
	Unions []Range
	// Ty is the IR type the descriptor was derived from, when built by
	// FromIR (layout queries like prefix-compatibility need it). May be nil
	// for hand-built descriptors.
	Ty ir.Type
}

// HasUnions reports whether the described type contains union storage.
func (d *Desc) HasUnions() bool { return d != nil && len(d.Unions) > 0 }

// UnionAt returns the union span containing [off, off+size), if any.
// Accesses that straddle a span boundary do not match (they are raw
// reinterpretation, which the relaxed model permits).
func (d *Desc) UnionAt(off, size int64) (Range, bool) {
	if d == nil {
		return Range{}, false
	}
	for _, r := range d.Unions {
		if r.Contains(off, off+size) {
			return r, true
		}
	}
	return Range{}, false
}

// FromIR builds a descriptor for the given IR type with the front end's
// C-level spelling. Union spans are derived structurally: the C front end
// lays a union out as a struct whose fields all sit at offset 0, so any
// struct with two or more fields at offset 0 is union storage.
func FromIR(ty ir.Type, ctype string) *Desc {
	d := &Desc{CType: ctype, Size: ty.Size(), Kind: KindOf(ty), Ty: ty}
	d.Unions = appendUnionRanges(nil, ty, 0)
	return d
}

// IsUnionType reports whether the IR type is (wholly) a union: a struct of
// two or more fields that all sit at offset 0.
func IsUnionType(ty ir.Type) bool {
	st, ok := ty.(*ir.StructType)
	return ok && st.IsUnion()
}

func appendUnionRanges(out []Range, ty ir.Type, base int64) []Range {
	switch t := ty.(type) {
	case *ir.StructType:
		if IsUnionType(t) {
			return append(out, Range{Lo: base, Hi: base + t.Size()})
		}
		for _, f := range t.Fields {
			out = appendUnionRanges(out, f.Ty, base+f.Offset)
		}
	case *ir.ArrayType:
		esz := t.Elem.Size()
		// Only descend when the element actually contains a union; arrays
		// are unrolled span by span so offsets stay exact.
		if len(appendUnionRanges(nil, t.Elem, 0)) > 0 {
			for i := int64(0); i < t.Len; i++ {
				out = appendUnionRanges(out, t.Elem, base+i*esz)
			}
		}
	}
	return out
}

// TagName splits a "struct foo" / "union foo" spelling into the bare tag.
// Spellings that are not tagged aggregates (or are anonymous) report false.
func TagName(ctype string) (string, bool) {
	for _, kw := range []string{"struct ", "union "} {
		if len(ctype) > len(kw) && ctype[:len(kw)] == kw {
			name := ctype[len(kw):]
			if name != "" && name != "<anon>" {
				return name, true
			}
		}
	}
	return "", false
}

// span is one Table registration.
type span struct {
	lo, hi int64
	desc   *Desc
}

// Table maps native address ranges to descriptors. The native machine
// registers stack allocations, globals, and adopted heap blocks; the
// introspection builtins and the hardened nlibc look addresses up. The
// table is engine-thread-only (the native machine is single-threaded).
type Table struct {
	spans []span // sorted by lo, non-overlapping
}

// Register records [addr, addr+size) as holding an allocation described by
// d. Overlapping older spans are evicted first (an address range reused by
// the stack belongs to the newest allocation).
func (t *Table) Register(addr, size int64, d *Desc) {
	if t == nil || size <= 0 || d == nil {
		return
	}
	t.RemoveRange(addr, addr+size)
	i := sort.Search(len(t.spans), func(i int) bool { return t.spans[i].lo >= addr })
	t.spans = append(t.spans, span{})
	copy(t.spans[i+1:], t.spans[i:])
	t.spans[i] = span{lo: addr, hi: addr + size, desc: d}
}

// RemoveRange drops every span overlapping [lo, hi) — the native frame
// epilogue uses it to retire a returning function's stack registrations.
func (t *Table) RemoveRange(lo, hi int64) {
	if t == nil || len(t.spans) == 0 {
		return
	}
	out := t.spans[:0]
	for _, s := range t.spans {
		if s.hi <= lo || s.lo >= hi {
			out = append(out, s)
		}
	}
	t.spans = out
}

// Find returns the descriptor and base address of the registered span
// containing addr.
func (t *Table) Find(addr int64) (d *Desc, base int64, size int64, ok bool) {
	if t == nil {
		return nil, 0, 0, false
	}
	i := sort.Search(len(t.spans), func(i int) bool { return t.spans[i].hi > addr })
	if i < len(t.spans) && t.spans[i].lo <= addr {
		s := t.spans[i]
		return s.desc, s.lo, s.hi - s.lo, true
	}
	return nil, 0, 0, false
}

// Len reports the number of live registrations (tests).
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}
