package memdesc

import (
	"testing"

	"repro/internal/ir"
)

func TestKindOf(t *testing.T) {
	if KindOf(ir.I32) != Int || KindOf(ir.F64) != Float || KindOf(ir.BytePtr) != Ptr {
		t.Fatalf("scalar kinds misclassified: %v %v %v", KindOf(ir.I32), KindOf(ir.F64), KindOf(ir.BytePtr))
	}
	st := ir.NewStruct("s", []ir.Field{{Name: "a", Ty: ir.I32}})
	if KindOf(st) != Unknown {
		t.Fatalf("aggregate should classify Unknown, got %v", KindOf(st))
	}
}

func union2() *ir.StructType {
	u := &ir.StructType{Name: "u", Fields: []ir.Field{
		{Name: "i", Ty: ir.I64, Offset: 0},
		{Name: "d", Ty: ir.F64, Offset: 0},
	}}
	u.SetLayout(8, 8)
	return u
}

func TestFromIRUnionSpans(t *testing.T) {
	u := union2()
	if !IsUnionType(u) {
		t.Fatal("union2 not recognized as union")
	}
	d := FromIR(u, "union u")
	if d.Size != 8 || len(d.Unions) != 1 || d.Unions[0] != (Range{0, 8}) {
		t.Fatalf("bad union desc: %+v", d)
	}
	if _, ok := d.UnionAt(0, 4); !ok {
		t.Fatal("interior access should land in the union span")
	}
	if _, ok := d.UnionAt(4, 8); ok {
		t.Fatal("straddling access must not match")
	}

	// A struct embedding the union at a nonzero offset.
	st := ir.NewStruct("holder", []ir.Field{
		{Name: "tag", Ty: ir.I64},
		{Name: "u", Ty: u},
	})
	hd := FromIR(st, "struct holder")
	if len(hd.Unions) != 1 || hd.Unions[0] != (Range{8, 16}) {
		t.Fatalf("embedded union span wrong: %+v", hd.Unions)
	}

	// An array of union-bearing elements unrolls span by span.
	arr := &ir.ArrayType{Elem: u, Len: 3}
	ad := FromIR(arr, "union u [3]")
	if len(ad.Unions) != 3 || ad.Unions[2] != (Range{16, 24}) {
		t.Fatalf("array union spans wrong: %+v", ad.Unions)
	}

	plain := FromIR(ir.NewStruct("p", []ir.Field{{Name: "a", Ty: ir.I32}, {Name: "b", Ty: ir.I32}}), "struct p")
	if plain.HasUnions() {
		t.Fatalf("plain struct reported unions: %+v", plain.Unions)
	}
}

func TestTable(t *testing.T) {
	var tab Table
	di := FromIR(ir.I32, "int")
	dd := FromIR(ir.F64, "double")

	tab.Register(100, 4, di)
	tab.Register(200, 8, dd)
	tab.Register(50, 10, di)

	if d, base, size, ok := tab.Find(203); !ok || d != dd || base != 200 || size != 8 {
		t.Fatalf("Find(203) = %v %d %d %v", d, base, size, ok)
	}
	if _, _, _, ok := tab.Find(104); ok {
		t.Fatal("Find past end of span should miss")
	}
	if _, _, _, ok := tab.Find(99); ok {
		t.Fatal("Find in gap should miss")
	}

	// Re-registering an overlapping range evicts the old span (stack reuse).
	tab.Register(100, 4, dd)
	if d, _, _, _ := tab.Find(100); d != dd {
		t.Fatal("re-registration did not replace the old descriptor")
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tab.Len())
	}

	tab.RemoveRange(0, 150)
	if tab.Len() != 1 {
		t.Fatalf("after RemoveRange Len = %d, want 1", tab.Len())
	}
	if _, _, _, ok := tab.Find(100); ok {
		t.Fatal("removed span still findable")
	}
	if _, _, _, ok := tab.Find(200); !ok {
		t.Fatal("surviving span lost")
	}

	// nil receiver is a safe no-op everywhere.
	var nilTab *Table
	nilTab.Register(0, 8, di)
	nilTab.RemoveRange(0, 8)
	if _, _, _, ok := nilTab.Find(0); ok || nilTab.Len() != 0 {
		t.Fatal("nil table should be inert")
	}
}
