// Package ir defines SIR, a typed, register-based intermediate representation
// modeled on LLVM IR. SIR is the contract between the C front end
// (internal/cc), the optimizer (internal/opt), and the execution engines
// (internal/core, internal/nativevm): C functions are lowered to SIR and every
// engine interprets the same SIR, differing only in its memory model.
//
// SIR deliberately retains the C-level properties the paper relies on: memory
// operations are typed, pointer arithmetic is explicit and byte-granular
// (gep), calls carry the number of fixed parameters so that variadic-argument
// accesses are observable, and integer types of unusual widths (e.g. i48) are
// representable.
package ir

import (
	"fmt"
	"strings"
)

// PtrSize is the size of a pointer in bytes on the simulated machine (AMD64).
const PtrSize = 8

// Type is the interface implemented by all SIR types.
type Type interface {
	// Size returns the storage size in bytes, including padding.
	Size() int64
	// Align returns the natural alignment in bytes.
	Align() int64
	// String returns the textual form used by the printer and parser.
	String() string
}

// VoidType is the type of functions that return nothing.
type VoidType struct{}

func (VoidType) Size() int64    { return 0 }
func (VoidType) Align() int64   { return 1 }
func (VoidType) String() string { return "void" }

// IntType is an integer type of an arbitrary bit width. Widths that are not a
// power of two (such as LLVM's i48) are stored in ceil(bits/8) bytes.
type IntType struct {
	Bits int
}

func (t *IntType) Size() int64 { return int64((t.Bits + 7) / 8) }

func (t *IntType) Align() int64 {
	s := t.Size()
	for _, a := range []int64{1, 2, 4, 8} {
		if s <= a {
			return a
		}
	}
	return 8
}

func (t *IntType) String() string { return fmt.Sprintf("i%d", t.Bits) }

// FloatType is a binary floating-point type (32 or 64 bits).
type FloatType struct {
	Bits int
}

func (t *FloatType) Size() int64    { return int64(t.Bits / 8) }
func (t *FloatType) Align() int64   { return t.Size() }
func (t *FloatType) String() string { return map[int]string{32: "f32", 64: "f64"}[t.Bits] }

// PtrType is a pointer. Elem records the pointee type for diagnostics and for
// typed loads through the pointer; it does not affect size or layout.
type PtrType struct {
	Elem Type
}

func (t *PtrType) Size() int64    { return PtrSize }
func (t *PtrType) Align() int64   { return PtrSize }
func (t *PtrType) String() string { return "ptr" }

// ArrayType is a fixed-length array.
type ArrayType struct {
	Elem Type
	Len  int64
}

func (t *ArrayType) Size() int64    { return t.Elem.Size() * t.Len }
func (t *ArrayType) Align() int64   { return t.Elem.Align() }
func (t *ArrayType) String() string { return fmt.Sprintf("[%d x %s]", t.Len, t.Elem) }

// Field is a single member of a struct type.
type Field struct {
	Name   string
	Ty     Type
	Offset int64 // byte offset from the start of the struct, set by Layout
}

// StructType is a C struct. Call Layout (or NewStruct) before using Size,
// Align, or Offset.
type StructType struct {
	Name   string // tag name; may be empty for anonymous structs
	Fields []Field

	size  int64
	align int64
	laid  bool
}

// NewStruct builds a struct type and computes its layout.
func NewStruct(name string, fields []Field) *StructType {
	t := &StructType{Name: name, Fields: fields}
	t.Layout()
	return t
}

// Layout assigns field offsets using natural alignment and sets the total
// size, mirroring the System V AMD64 rules the paper's platform uses.
func (t *StructType) Layout() {
	var off, maxAlign int64 = 0, 1
	for i := range t.Fields {
		a := t.Fields[i].Ty.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = alignUp(off, a)
		t.Fields[i].Offset = off
		off += t.Fields[i].Ty.Size()
	}
	t.size = alignUp(off, maxAlign)
	t.align = maxAlign
	t.laid = true
}

// SetLayout overrides the computed layout. The C front end uses this for
// unions, whose fields all live at offset 0.
func (t *StructType) SetLayout(size, align int64) {
	t.size, t.align, t.laid = size, align, true
}

func (t *StructType) Size() int64 {
	if !t.laid {
		t.Layout()
	}
	return t.size
}

func (t *StructType) Align() int64 {
	if !t.laid {
		t.Layout()
	}
	return t.align
}

func (t *StructType) String() string {
	if t.Name != "" {
		return "%" + t.Name
	}
	var b strings.Builder
	b.WriteString("{ ")
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Ty.String())
	}
	b.WriteString(" }")
	return b.String()
}

// IsUnion reports whether the struct is C-union storage: two or more
// fields that all sit at offset 0 (the layout the C front end gives
// unions via SetLayout).
func (t *StructType) IsUnion() bool {
	if len(t.Fields) < 2 {
		return false
	}
	for _, f := range t.Fields {
		if f.Offset != 0 {
			return false
		}
	}
	return true
}

// FieldAt returns the index of the field containing the given byte offset,
// or -1 if the offset is outside the struct.
func (t *StructType) FieldAt(off int64) int {
	for i := len(t.Fields) - 1; i >= 0; i-- {
		if off >= t.Fields[i].Offset {
			if off < t.Fields[i].Offset+t.Fields[i].Ty.Size() {
				return i
			}
			return -1
		}
	}
	return -1
}

// FuncType is a function signature.
type FuncType struct {
	Ret      Type
	Params   []Type
	Variadic bool
}

func (t *FuncType) Size() int64  { return 0 }
func (t *FuncType) Align() int64 { return 1 }

func (t *FuncType) String() string {
	var b strings.Builder
	b.WriteString("fn(")
	for i, p := range t.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	if t.Variadic {
		if len(t.Params) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("...")
	}
	b.WriteString(") ")
	b.WriteString(t.Ret.String())
	return b.String()
}

// Singleton types shared across the repository. Types are compared with
// TypesEqual, never with ==, but reusing singletons keeps modules small.
var (
	Void = VoidType{}
	I1   = &IntType{Bits: 1}
	I8   = &IntType{Bits: 8}
	I16  = &IntType{Bits: 16}
	I32  = &IntType{Bits: 32}
	I48  = &IntType{Bits: 48}
	I64  = &IntType{Bits: 64}
	F32  = &FloatType{Bits: 32}
	F64  = &FloatType{Bits: 64}
)

// Ptr returns a pointer type to elem.
func Ptr(elem Type) *PtrType { return &PtrType{Elem: elem} }

// BytePtr is the generic pointer type used where the pointee is unknown.
var BytePtr = Ptr(I8)

// IntN returns the shared integer type of the given width when one exists,
// or a fresh one otherwise.
func IntN(bits int) *IntType {
	switch bits {
	case 1:
		return I1
	case 8:
		return I8
	case 16:
		return I16
	case 32:
		return I32
	case 48:
		return I48
	case 64:
		return I64
	}
	return &IntType{Bits: bits}
}

// TypesEqual reports structural type equality. Named structs compare by name;
// anonymous structs compare by field types.
func TypesEqual(a, b Type) bool {
	switch x := a.(type) {
	case VoidType:
		_, ok := b.(VoidType)
		return ok
	case *IntType:
		y, ok := b.(*IntType)
		return ok && x.Bits == y.Bits
	case *FloatType:
		y, ok := b.(*FloatType)
		return ok && x.Bits == y.Bits
	case *PtrType:
		_, ok := b.(*PtrType)
		return ok
	case *ArrayType:
		y, ok := b.(*ArrayType)
		return ok && x.Len == y.Len && TypesEqual(x.Elem, y.Elem)
	case *StructType:
		y, ok := b.(*StructType)
		if !ok {
			return false
		}
		if x.Name != "" || y.Name != "" {
			return x.Name == y.Name
		}
		if len(x.Fields) != len(y.Fields) {
			return false
		}
		for i := range x.Fields {
			if !TypesEqual(x.Fields[i].Ty, y.Fields[i].Ty) {
				return false
			}
		}
		return true
	case *FuncType:
		y, ok := b.(*FuncType)
		if !ok || x.Variadic != y.Variadic || len(x.Params) != len(y.Params) {
			return false
		}
		if !TypesEqual(x.Ret, y.Ret) {
			return false
		}
		for i := range x.Params {
			if !TypesEqual(x.Params[i], y.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// IsInt reports whether t is an integer type.
func IsInt(t Type) bool { _, ok := t.(*IntType); return ok }

// IsFloat reports whether t is a floating-point type.
func IsFloat(t Type) bool { _, ok := t.(*FloatType); return ok }

// IsPtr reports whether t is a pointer type.
func IsPtr(t Type) bool { _, ok := t.(*PtrType); return ok }

// IsAggregate reports whether t is an array or struct type.
func IsAggregate(t Type) bool {
	switch t.(type) {
	case *ArrayType, *StructType:
		return true
	}
	return false
}

func alignUp(v, a int64) int64 {
	if a <= 1 {
		return v
	}
	return (v + a - 1) / a * a
}
