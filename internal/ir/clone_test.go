package ir

import "testing"

func buildCloneFixture(t *testing.T) *Module {
	t.Helper()
	m := NewModule("fixture")
	arr := &ArrayType{Elem: I32, Len: 3}
	if err := m.AddGlobal(&Global{
		Name: "table",
		Ty:   arr,
		Init: ConstArrayVal{Ty: arr, Elems: []Const{
			ConstIntVal{Ty: I32, V: 1},
			ConstIntVal{Ty: I32, V: 2},
			ConstIntVal{Ty: I32, V: 3},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddGlobal(&Global{
		Name: "msg",
		Ty:   &ArrayType{Elem: I8, Len: 3},
		Init: ConstBytes{Data: []byte("hi\x00")},
	}); err != nil {
		t.Fatal(err)
	}
	f := &Func{Name: "main", Sig: &FuncType{Ret: I32}, NumRegs: 1}
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{
		{Op: OpRet, A: Operand{Kind: OperConstInt, Int: 0, Ty: I32}},
	}}}
	m.AddFunc(f)
	return m
}

// TestCloneDeepCopiesGlobals asserts the cache-safety contract: mutating a
// clone's globals (structs, byte data, aggregate elements) must not leak
// into the original module.
func TestCloneDeepCopiesGlobals(t *testing.T) {
	m := buildCloneFixture(t)
	c := m.Clone()

	if c.Global("table") == m.Global("table") {
		t.Fatal("clone shares *Global pointers with the original")
	}
	// Mutate the clone's aggregate initializer.
	ca := c.Global("table").Init.(ConstArrayVal)
	ca.Elems[0] = ConstIntVal{Ty: I32, V: 99}
	if got := m.Global("table").Init.(ConstArrayVal).Elems[0].(ConstIntVal).V; got != 1 {
		t.Errorf("mutating clone's array init leaked into original: %d", got)
	}
	// Mutate the clone's byte initializer.
	cb := c.Global("msg").Init.(ConstBytes)
	cb.Data[0] = 'X'
	if got := m.Global("msg").Init.(ConstBytes).Data[0]; got != 'h' {
		t.Errorf("mutating clone's byte init leaked into original: %c", got)
	}
	// Mutate the clone's instructions.
	c.Func("main").Blocks[0].Instrs[0].A.Int = 7
	if got := m.Func("main").Blocks[0].Instrs[0].A.Int; got != 0 {
		t.Errorf("mutating clone's instr leaked into original: %d", got)
	}
	// The clone's struct index is its own map.
	c.Structs["injected"] = &StructType{Name: "injected"}
	if _, ok := m.Structs["injected"]; ok {
		t.Error("clone shares the Structs map with the original")
	}
	// And the clone still verifies + prints identically (pre-mutation would
	// be equal; check shape survived).
	if c.Func("main") == nil || c.Global("table") == nil {
		t.Error("clone lost symbols")
	}
}

func TestCloneConstAliasing(t *testing.T) {
	orig := ConstStructVal{Fields: []Const{ConstBytes{Data: []byte{1, 2}}}}
	cl := CloneConst(orig).(ConstStructVal)
	cl.Fields[0].(ConstBytes).Data[0] = 9
	if orig.Fields[0].(ConstBytes).Data[0] != 1 {
		t.Error("CloneConst aliases nested byte data")
	}
	if CloneConst(nil) != nil {
		t.Error("CloneConst(nil) must be nil")
	}
}
