package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a module in SIR textual form (the format emitted by Print).
func Parse(src string) (*Module, error) {
	p := &parser{lex: newLexer(src)}
	m, err := p.module()
	if err != nil {
		return nil, fmt.Errorf("ir: parse error at line %d: %w", p.lex.line, err)
	}
	return m, nil
}

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tStr
	tPunct
)

type token struct {
	kind tokKind
	s    string
	i    int64
	f    float64
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	tok  token
}

func newLexer(src string) *lexer {
	l := &lexer{src: src, line: 1}
	l.next()
	return l
}

func (l *lexer) next() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\n' {
			l.line++
			l.pos++
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' {
			l.pos++
			continue
		}
		if c == ';' { // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		l.tok = token{kind: tEOF, line: l.line}
		return
	}
	c := l.src[l.pos]
	start := l.pos
	switch {
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\\' {
				l.pos++
			}
			l.pos++
		}
		l.pos++ // closing quote
		s, err := strconv.Unquote(l.src[start:l.pos])
		if err != nil {
			s = l.src[start:l.pos]
		}
		l.tok = token{kind: tStr, s: s, line: l.line}
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		l.tok = token{kind: tIdent, s: l.src[start:l.pos], line: l.line}
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++
		isFloat := false
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c >= '0' && c <= '9' {
				l.pos++
				continue
			}
			if c == '.' || c == 'e' || c == 'E' {
				isFloat = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				continue
			}
			break
		}
		text := l.src[start:l.pos]
		if isFloat {
			f, _ := strconv.ParseFloat(text, 64)
			l.tok = token{kind: tFloat, f: f, line: l.line}
		} else {
			i, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				// values like 9223372036854775808 printed from unsigned use
				u, _ := strconv.ParseUint(text, 10, 64)
				i = int64(u)
			}
			l.tok = token{kind: tInt, i: i, line: l.line}
		}
	default:
		l.pos++
		l.tok = token{kind: tPunct, s: string(c), line: l.line}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

type parser struct {
	lex *lexer
	m   *Module
}

func (p *parser) tok() token  { return p.lex.tok }
func (p *parser) advance()    { p.lex.next() }
func (p *parser) atEOF() bool { return p.lex.tok.kind == tEOF }

func (p *parser) expectPunct(s string) error {
	t := p.tok()
	if t.kind != tPunct || t.s != s {
		return fmt.Errorf("expected %q, got %q", s, tokenText(t))
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent(s string) error {
	t := p.tok()
	if t.kind != tIdent || t.s != s {
		return fmt.Errorf("expected %q, got %q", s, tokenText(t))
	}
	p.advance()
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.tok()
	if t.kind != tIdent {
		return "", fmt.Errorf("expected identifier, got %q", tokenText(t))
	}
	p.advance()
	return t.s, nil
}

func (p *parser) intLit() (int64, error) {
	t := p.tok()
	if t.kind != tInt {
		return 0, fmt.Errorf("expected integer, got %q", tokenText(t))
	}
	p.advance()
	return t.i, nil
}

func (p *parser) str() (string, error) {
	t := p.tok()
	if t.kind != tStr {
		return "", fmt.Errorf("expected string, got %q", tokenText(t))
	}
	p.advance()
	return t.s, nil
}

func tokenText(t token) string {
	switch t.kind {
	case tEOF:
		return "<eof>"
	case tIdent, tPunct, tStr:
		return t.s
	case tInt:
		return strconv.FormatInt(t.i, 10)
	case tFloat:
		return strconv.FormatFloat(t.f, 'g', -1, 64)
	}
	return "?"
}

func (p *parser) module() (*Module, error) {
	if err := p.expectIdent("module"); err != nil {
		return nil, err
	}
	name, err := p.str()
	if err != nil {
		return nil, err
	}
	p.m = NewModule(name)
	for !p.atEOF() {
		kw, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "struct":
			if err := p.structDef(false); err != nil {
				return nil, err
			}
		case "union":
			if err := p.structDef(true); err != nil {
				return nil, err
			}
		case "global":
			if err := p.globalDef(); err != nil {
				return nil, err
			}
		case "declare":
			if err := p.declare(); err != nil {
				return nil, err
			}
		case "func":
			if err := p.funcDef(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unexpected top-level keyword %q", kw)
		}
	}
	return p.m, nil
}

func (p *parser) structDef(isUnion bool) error {
	if err := p.expectPunct("%"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	var fields []Field
	for !(p.tok().kind == tPunct && p.tok().s == "}") {
		if len(fields) > 0 {
			if err := p.expectPunct(","); err != nil {
				return err
			}
		}
		ty, err := p.typ()
		if err != nil {
			return err
		}
		fname, err := p.ident()
		if err != nil {
			return err
		}
		fields = append(fields, Field{Name: fname, Ty: ty})
	}
	p.advance() // }
	if isUnion {
		// Union layout: every field at offset 0, size/align of the widest
		// member (the same layout the C front end produces via SetLayout).
		st := &StructType{Name: name, Fields: fields}
		var size, align int64 = 0, 1
		for i := range st.Fields {
			st.Fields[i].Offset = 0
			if s := st.Fields[i].Ty.Size(); s > size {
				size = s
			}
			if a := st.Fields[i].Ty.Align(); a > align {
				align = a
			}
		}
		st.SetLayout(alignUp(size, align), align)
		p.m.Structs[name] = st
		return nil
	}
	p.m.Structs[name] = NewStruct(name, fields)
	return nil
}

func (p *parser) typ() (Type, error) {
	t := p.tok()
	switch {
	case t.kind == tIdent && t.s == "void":
		p.advance()
		return Void, nil
	case t.kind == tIdent && t.s == "ptr":
		p.advance()
		return BytePtr, nil
	case t.kind == tIdent && (t.s == "f32" || t.s == "f64"):
		p.advance()
		if t.s == "f32" {
			return F32, nil
		}
		return F64, nil
	case t.kind == tIdent && strings.HasPrefix(t.s, "i"):
		bits, err := strconv.Atoi(t.s[1:])
		if err != nil || bits <= 0 || bits > 64 {
			return nil, fmt.Errorf("bad integer type %q", t.s)
		}
		p.advance()
		return IntN(bits), nil
	case t.kind == tIdent && t.s == "fn":
		p.advance()
		return p.fnType()
	case t.kind == tPunct && t.s == "[":
		p.advance()
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		if err := p.expectIdent("x"); err != nil {
			return nil, err
		}
		elem, err := p.typ()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return &ArrayType{Elem: elem, Len: n}, nil
	case t.kind == tPunct && t.s == "%":
		p.advance()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st, ok := p.m.Structs[name]
		if !ok {
			return nil, fmt.Errorf("unknown struct %%%s", name)
		}
		return st, nil
	case t.kind == tPunct && t.s == "{":
		p.advance()
		var fields []Field
		for !(p.tok().kind == tPunct && p.tok().s == "}") {
			if len(fields) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			ty, err := p.typ()
			if err != nil {
				return nil, err
			}
			fields = append(fields, Field{Name: fmt.Sprintf("f%d", len(fields)), Ty: ty})
		}
		p.advance()
		return NewStruct("", fields), nil
	}
	return nil, fmt.Errorf("expected type, got %q", tokenText(t))
}

func (p *parser) fnType() (*FuncType, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	ft := &FuncType{}
	for !(p.tok().kind == tPunct && p.tok().s == ")") {
		if len(ft.Params) > 0 || ft.Variadic {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		if p.tok().kind == tPunct && p.tok().s == "." {
			// "..." prints as three dots; the lexer may merge them into ident "..."
			for i := 0; i < 3; i++ {
				if p.tok().kind == tPunct && p.tok().s == "." {
					p.advance()
				}
			}
			ft.Variadic = true
			continue
		}
		if p.tok().kind == tIdent && p.tok().s == "..." {
			p.advance()
			ft.Variadic = true
			continue
		}
		ty, err := p.typ()
		if err != nil {
			return nil, err
		}
		ft.Params = append(ft.Params, ty)
	}
	p.advance() // )
	ret, err := p.typ()
	if err != nil {
		return nil, err
	}
	ft.Ret = ret
	return ft, nil
}

func (p *parser) globalDef() error {
	if err := p.expectPunct("@"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	g := &Global{Name: name}
	if p.tok().kind == tIdent && p.tok().s == "const" {
		g.IsConst = true
		p.advance()
	}
	g.Ty, err = p.typ()
	if err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	g.Init, err = p.constVal()
	if err != nil {
		return err
	}
	if p.tok().kind == tPunct && p.tok().s == "!" {
		p.advance()
		if err := p.expectIdent("ctype"); err != nil {
			return err
		}
		s, err := p.str()
		if err != nil {
			return err
		}
		g.CType = s
	}
	return p.m.AddGlobal(g)
}

func (p *parser) constVal() (Const, error) {
	kw, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch kw {
	case "zero":
		return ConstZero{}, nil
	case "int":
		v, err := p.intLit()
		if err != nil {
			return nil, err
		}
		return ConstIntVal{V: v}, nil
	case "float":
		t := p.tok()
		var f float64
		switch t.kind {
		case tFloat:
			f = t.f
		case tInt:
			f = float64(t.i)
		default:
			return nil, fmt.Errorf("expected float, got %q", tokenText(t))
		}
		p.advance()
		return ConstFloatVal{V: f}, nil
	case "bytes":
		s, err := p.str()
		if err != nil {
			return nil, err
		}
		return ConstBytes{Data: []byte(s)}, nil
	case "array":
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		var elems []Const
		for !(p.tok().kind == tPunct && p.tok().s == "]") {
			if len(elems) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			e, err := p.constVal()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		p.advance()
		return ConstArrayVal{Elems: elems}, nil
	case "fields":
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		var elems []Const
		for !(p.tok().kind == tPunct && p.tok().s == "}") {
			if len(elems) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			e, err := p.constVal()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		p.advance()
		return ConstStructVal{Fields: elems}, nil
	case "addr":
		t := p.tok()
		if t.kind == tPunct && t.s == "@" {
			p.advance()
			sym, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("+"); err != nil {
				return nil, err
			}
			off, err := p.intLit()
			if err != nil {
				return nil, err
			}
			return ConstGlobalRef{Sym: sym, Off: off}, nil
		}
		if t.kind == tPunct && t.s == "&" {
			p.advance()
			sym, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ConstFuncRef{Sym: sym}, nil
		}
		return nil, fmt.Errorf("expected @global or &func after addr")
	}
	return nil, fmt.Errorf("unknown constant kind %q", kw)
}

func (p *parser) declare() error {
	if err := p.expectPunct("@"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expectIdent("fn"); err != nil {
		return err
	}
	sig, err := p.fnType()
	if err != nil {
		return err
	}
	p.m.AddFunc(&Func{Name: name, Sig: sig, IsDecl: true})
	return nil
}

func (p *parser) funcDef() error {
	if err := p.expectPunct("@"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expectIdent("fn"); err != nil {
		return err
	}
	sig, err := p.fnType()
	if err != nil {
		return err
	}
	f := &Func{Name: name, Sig: sig}
	if err := p.expectIdent("regs"); err != nil {
		return err
	}
	n, err := p.intLit()
	if err != nil {
		return err
	}
	f.NumRegs = int(n)
	if p.tok().kind == tIdent && p.tok().s == "names" {
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return err
		}
		for !(p.tok().kind == tPunct && p.tok().s == ")") {
			if len(f.ParamNames) > 0 {
				if err := p.expectPunct(","); err != nil {
					return err
				}
			}
			pn, err := p.ident()
			if err != nil {
				return err
			}
			f.ParamNames = append(f.ParamNames, pn)
		}
		p.advance()
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}

	// First pass: collect blocks and raw instruction lines; block targets are
	// names until all blocks are known.
	type pendingTarget struct {
		blk, instr, which int // which: 0 = Blk0, 1 = Blk1, 2+n = case n
		name              string
	}
	var pend []pendingTarget
	blockIdx := map[string]int{}
	for !(p.tok().kind == tPunct && p.tok().s == "}") {
		label, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		blk := &Block{Name: label}
		blockIdx[label] = len(f.Blocks)
		f.Blocks = append(f.Blocks, blk)
		for {
			t := p.tok()
			if t.kind == tPunct && t.s == "}" {
				break
			}
			// A new block starts with "ident :".
			if t.kind == tIdent {
				save := *p.lex
				name := t.s
				p.advance()
				if p.tok().kind == tPunct && p.tok().s == ":" {
					*p.lex = save
					break
				}
				*p.lex = save
				_ = name
			}
			in, targets, err := p.instr(f)
			if err != nil {
				return err
			}
			for _, tg := range targets {
				tg.blk = len(f.Blocks) - 1
				tg.instr = len(blk.Instrs)
				pend = append(pend, pendingTarget{tg.blk, tg.instr, tg.which, tg.name})
			}
			blk.Instrs = append(blk.Instrs, in)
		}
	}
	p.advance() // }
	for _, tg := range pend {
		idx, ok := blockIdx[tg.name]
		if !ok {
			return fmt.Errorf("function %s: unknown block %q", name, tg.name)
		}
		in := &f.Blocks[tg.blk].Instrs[tg.instr]
		switch {
		case tg.which == 0:
			in.Blk0 = idx
		case tg.which == 1:
			in.Blk1 = idx
		default:
			in.Cases[tg.which-2].Blk = idx
		}
	}
	p.m.AddFunc(f)
	return nil
}

type target struct {
	blk, instr, which int
	name              string
}

// instr parses one instruction. Branch targets come back as names in targets.
// Trailing "!key value" annotations restore instruction metadata: "!line N"
// restores the source line (without it, Line stays 0 — "unknown" — instead of
// being repointed at the IR-text token line) and `!ctype "T"` restores the
// declared C type that drives the dynamic type-identity checks. Annotations
// may appear in any order.
func (p *parser) instr(f *Func) (Instr, []target, error) {
	in, targets, err := p.instrBody(f)
	if err != nil {
		return in, targets, err
	}
	for p.tok().kind == tPunct && p.tok().s == "!" {
		p.advance()
		key, err := p.ident()
		if err != nil {
			return in, targets, err
		}
		switch key {
		case "line":
			n, err := p.intLit()
			if err != nil {
				return in, targets, err
			}
			in.Line = int(n)
		case "ctype":
			s, err := p.str()
			if err != nil {
				return in, targets, err
			}
			in.CType = s
		default:
			return in, targets, fmt.Errorf("unknown instruction annotation !%s", key)
		}
	}
	return in, targets, nil
}

func (p *parser) instrBody(f *Func) (Instr, []target, error) {
	in := Instr{Dst: -1}
	var targets []target

	// Destination form: %rN = ...
	if p.tok().kind == tPunct && p.tok().s == "%" {
		p.advance()
		reg, err := p.ident()
		if err != nil {
			return in, nil, err
		}
		if !strings.HasPrefix(reg, "r") {
			return in, nil, fmt.Errorf("bad register %q", reg)
		}
		n, err := strconv.Atoi(reg[1:])
		if err != nil {
			return in, nil, err
		}
		in.Dst = n
		if err := p.expectPunct("="); err != nil {
			return in, nil, err
		}
	}

	kw, err := p.ident()
	if err != nil {
		return in, nil, err
	}
	switch kw {
	case "alloca":
		in.Op = OpAlloca
		in.Ty, err = p.typ()
		if err != nil {
			return in, nil, err
		}
		if p.tok().kind == tIdent && p.tok().s == "count" {
			p.advance()
			cnt, err := p.operand()
			if err != nil {
				return in, nil, err
			}
			in.SetCount(cnt)
		}
		if p.tok().kind == tIdent && p.tok().s == "name" {
			p.advance()
			in.Name, err = p.str()
			if err != nil {
				return in, nil, err
			}
		}
	case "load":
		in.Op = OpLoad
		if in.Ty, err = p.typ(); err != nil {
			return in, nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return in, nil, err
		}
		if in.Addr, err = p.operand(); err != nil {
			return in, nil, err
		}
	case "store":
		in.Op = OpStore
		if in.Ty, err = p.typ(); err != nil {
			return in, nil, err
		}
		if in.A, err = p.operand(); err != nil {
			return in, nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return in, nil, err
		}
		if in.Addr, err = p.operand(); err != nil {
			return in, nil, err
		}
	case "gep":
		in.Op = OpGEP
		if in.Addr, err = p.operand(); err != nil {
			return in, nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return in, nil, err
		}
		if in.Stride, err = p.intLit(); err != nil {
			return in, nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return in, nil, err
		}
		if in.A, err = p.operand(); err != nil {
			return in, nil, err
		}
	case "cmp":
		in.Op = OpCmp
		pred, err := p.ident()
		if err != nil {
			return in, nil, err
		}
		found := false
		for i, n := range predNames {
			if n == pred {
				in.Pred = Pred(i)
				found = true
				break
			}
		}
		if !found {
			return in, nil, fmt.Errorf("unknown predicate %q", pred)
		}
		if in.Ty, err = p.typ(); err != nil {
			return in, nil, err
		}
		if in.A, err = p.operand(); err != nil {
			return in, nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return in, nil, err
		}
		if in.B, err = p.operand(); err != nil {
			return in, nil, err
		}
	case "select":
		in.Op = OpSelect
		if in.A, err = p.operand(); err != nil {
			return in, nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return in, nil, err
		}
		if in.Ty, err = p.typ(); err != nil {
			return in, nil, err
		}
		if in.B, err = p.operand(); err != nil {
			return in, nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return in, nil, err
		}
		if in.C, err = p.operand(); err != nil {
			return in, nil, err
		}
	case "call":
		in.Op = OpCall
		if p.tok().kind == tIdent && p.tok().s == "void" {
			p.advance()
			in.Ty = Void
		} else {
			if in.Ty, err = p.typ(); err != nil {
				return in, nil, err
			}
		}
		if in.Callee, err = p.operand(); err != nil {
			return in, nil, err
		}
		if err = p.expectPunct("("); err != nil {
			return in, nil, err
		}
		for !(p.tok().kind == tPunct && p.tok().s == ")") {
			if len(in.Args) > 0 {
				if err = p.expectPunct(","); err != nil {
					return in, nil, err
				}
			}
			aty, err := p.typ()
			if err != nil {
				return in, nil, err
			}
			a, err := p.operand()
			if err != nil {
				return in, nil, err
			}
			a.Ty = aty
			in.Args = append(in.Args, a)
		}
		p.advance() // )
		if err = p.expectIdent("fixed"); err != nil {
			return in, nil, err
		}
		n, err := p.intLit()
		if err != nil {
			return in, nil, err
		}
		in.FixedArgs = int(n)
	case "br":
		in.Op = OpBr
		name, err := p.ident()
		if err != nil {
			return in, nil, err
		}
		targets = append(targets, target{which: 0, name: name})
	case "condbr":
		in.Op = OpCondBr
		if in.A, err = p.operand(); err != nil {
			return in, nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return in, nil, err
		}
		n0, err := p.ident()
		if err != nil {
			return in, nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return in, nil, err
		}
		n1, err := p.ident()
		if err != nil {
			return in, nil, err
		}
		targets = append(targets, target{which: 0, name: n0}, target{which: 1, name: n1})
	case "switch":
		in.Op = OpSwitch
		if in.Ty, err = p.typ(); err != nil {
			return in, nil, err
		}
		if in.A, err = p.operand(); err != nil {
			return in, nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return in, nil, err
		}
		if err = p.expectIdent("default"); err != nil {
			return in, nil, err
		}
		dn, err := p.ident()
		if err != nil {
			return in, nil, err
		}
		targets = append(targets, target{which: 0, name: dn})
		if err = p.expectPunct("["); err != nil {
			return in, nil, err
		}
		for !(p.tok().kind == tPunct && p.tok().s == "]") {
			if len(in.Cases) > 0 {
				if err = p.expectPunct(","); err != nil {
					return in, nil, err
				}
			}
			v, err := p.intLit()
			if err != nil {
				return in, nil, err
			}
			if err = p.expectPunct(":"); err != nil {
				return in, nil, err
			}
			cn, err := p.ident()
			if err != nil {
				return in, nil, err
			}
			targets = append(targets, target{which: 2 + len(in.Cases), name: cn})
			in.Cases = append(in.Cases, SwitchCase{Val: v})
		}
		p.advance()
	case "ret":
		in.Op = OpRet
		if p.tok().kind == tIdent && p.tok().s == "void" {
			p.advance()
		} else {
			if in.Ty, err = p.typ(); err != nil {
				return in, nil, err
			}
			if in.A, err = p.operand(); err != nil {
				return in, nil, err
			}
		}
	case "unreachable":
		in.Op = OpUnreachable
	default:
		// bin or cast op
		for i, n := range binNames {
			if n == kw {
				in.Op = OpBin
				in.Bin = BinOp(i)
				if in.Ty, err = p.typ(); err != nil {
					return in, nil, err
				}
				if in.A, err = p.operand(); err != nil {
					return in, nil, err
				}
				if err = p.expectPunct(","); err != nil {
					return in, nil, err
				}
				if in.B, err = p.operand(); err != nil {
					return in, nil, err
				}
				return in, targets, nil
			}
		}
		for i, n := range castNames {
			if n == kw {
				in.Op = OpCast
				in.Cast = CastOp(i)
				if in.Ty, err = p.typ(); err != nil {
					return in, nil, err
				}
				if in.A, err = p.operand(); err != nil {
					return in, nil, err
				}
				if err = p.expectIdent("to"); err != nil {
					return in, nil, err
				}
				if in.Ty2, err = p.typ(); err != nil {
					return in, nil, err
				}
				return in, targets, nil
			}
		}
		return in, nil, fmt.Errorf("unknown instruction %q", kw)
	}
	return in, targets, nil
}

func (p *parser) operand() (Operand, error) {
	t := p.tok()
	switch {
	case t.kind == tPunct && t.s == "%":
		p.advance()
		reg, err := p.ident()
		if err != nil {
			return Operand{}, err
		}
		if !strings.HasPrefix(reg, "r") {
			return Operand{}, fmt.Errorf("bad register %q", reg)
		}
		n, err := strconv.Atoi(reg[1:])
		if err != nil {
			return Operand{}, err
		}
		return Reg(n, nil), nil
	case t.kind == tInt:
		p.advance()
		return ConstInt(t.i, I64), nil
	case t.kind == tFloat:
		p.advance()
		return ConstFloat(t.f, F64), nil
	case t.kind == tPunct && t.s == "@":
		p.advance()
		sym, err := p.ident()
		if err != nil {
			return Operand{}, err
		}
		return GlobalRef(sym), nil
	case t.kind == tPunct && t.s == "&":
		p.advance()
		sym, err := p.ident()
		if err != nil {
			return Operand{}, err
		}
		return FuncRef(sym), nil
	case t.kind == tIdent && t.s == "null":
		p.advance()
		return Null(), nil
	}
	return Operand{}, fmt.Errorf("expected operand, got %q", tokenText(t))
}
