package ir

import (
	"fmt"
	"math"
)

// Opcode identifies an SIR instruction.
type Opcode int

const (
	OpInvalid Opcode = iota
	OpAlloca         // Dst = new stack object of Ty (Count elements when set)
	OpLoad           // Dst = *(Ty*)Addr
	OpStore          // *(Ty*)Addr = A
	OpGEP            // Dst = Addr + A*Stride (byte-granular pointer arithmetic)
	OpBin            // Dst = A <Bin> B, operating on Ty
	OpCmp            // Dst(i1) = A <Pred> B, comparing at Ty
	OpCast           // Dst = cast<CastOp>(A) from Ty to Ty2
	OpSelect         // Dst = A(cond i1) ? B : C
	OpCall           // Dst = Callee(Args...)
	OpBr             // goto Blk0
	OpCondBr         // if A goto Blk0 else Blk1
	OpSwitch         // multiway branch on A; Cases + default Blk0
	OpRet            // return A (or nothing)
	OpUnreachable
)

// BinOp is an arithmetic or bitwise operation for OpBin.
type BinOp int

const (
	Add BinOp = iota
	Sub
	Mul
	SDiv
	UDiv
	SRem
	URem
	And
	Or
	Xor
	Shl
	LShr
	AShr
	FAdd
	FSub
	FMul
	FDiv
	FRem
)

var binNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", SDiv: "sdiv", UDiv: "udiv",
	SRem: "srem", URem: "urem", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", LShr: "lshr", AShr: "ashr",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FRem: "frem",
}

func (b BinOp) String() string { return binNames[b] }

// IsFloatOp reports whether the operation works on floating-point values.
func (b BinOp) IsFloatOp() bool { return b >= FAdd }

// Pred is a comparison predicate for OpCmp. Integer predicates follow LLVM
// naming (signed/unsigned); float predicates are ordered comparisons.
type Pred int

const (
	Eq Pred = iota
	Ne
	Slt
	Sle
	Sgt
	Sge
	Ult
	Ule
	Ugt
	Uge
	FOeq
	FOne
	FOlt
	FOle
	FOgt
	FOge
)

var predNames = [...]string{
	Eq: "eq", Ne: "ne", Slt: "slt", Sle: "sle", Sgt: "sgt", Sge: "sge",
	Ult: "ult", Ule: "ule", Ugt: "ugt", Uge: "uge",
	FOeq: "oeq", FOne: "one", FOlt: "olt", FOle: "ole", FOgt: "ogt", FOge: "oge",
}

func (p Pred) String() string { return predNames[p] }

// IsFloatPred reports whether the predicate compares floating-point values.
func (p Pred) IsFloatPred() bool { return p >= FOeq }

// CastOp is a conversion operation for OpCast.
type CastOp int

const (
	Trunc CastOp = iota
	ZExt
	SExt
	FPTrunc
	FPExt
	FPToSI
	FPToUI
	SIToFP
	UIToFP
	PtrToInt
	IntToPtr
	Bitcast
)

var castNames = [...]string{
	Trunc: "trunc", ZExt: "zext", SExt: "sext", FPTrunc: "fptrunc",
	FPExt: "fpext", FPToSI: "fptosi", FPToUI: "fptoui", SIToFP: "sitofp",
	UIToFP: "uitofp", PtrToInt: "ptrtoint", IntToPtr: "inttoptr", Bitcast: "bitcast",
}

func (c CastOp) String() string { return castNames[c] }

// OperandKind discriminates Operand.
type OperandKind int

const (
	OperNone OperandKind = iota
	OperReg              // virtual register
	OperConstInt
	OperConstFloat
	OperGlobal // address of a module global
	OperFunc   // address of a function
	OperNull   // the null pointer
)

// Operand is an instruction input: a register, an immediate constant, or a
// symbol address. Ty records the operand's type as known to the front end.
type Operand struct {
	Kind OperandKind
	Reg  int
	Int  int64   // OperConstInt: value, sign-extended to 64 bits
	Flt  float64 // OperConstFloat
	Sym  string  // OperGlobal / OperFunc
	Ty   Type
}

// Reg returns a register operand.
func Reg(r int, ty Type) Operand { return Operand{Kind: OperReg, Reg: r, Ty: ty} }

// ConstInt returns an integer-constant operand.
func ConstInt(v int64, ty Type) Operand { return Operand{Kind: OperConstInt, Int: v, Ty: ty} }

// ConstFloat returns a float-constant operand.
func ConstFloat(v float64, ty Type) Operand { return Operand{Kind: OperConstFloat, Flt: v, Ty: ty} }

// GlobalRef returns an operand holding the address of a module global.
func GlobalRef(sym string) Operand { return Operand{Kind: OperGlobal, Sym: sym, Ty: BytePtr} }

// FuncRef returns an operand holding the address of a function.
func FuncRef(sym string) Operand { return Operand{Kind: OperFunc, Sym: sym, Ty: BytePtr} }

// Null returns the null-pointer operand.
func Null() Operand { return Operand{Kind: OperNull, Ty: BytePtr} }

// IsConst reports whether the operand is an immediate (including null and
// symbol addresses, which are link-time constants).
func (o Operand) IsConst() bool { return o.Kind != OperReg && o.Kind != OperNone }

func (o Operand) String() string {
	switch o.Kind {
	case OperReg:
		return fmt.Sprintf("%%r%d", o.Reg)
	case OperConstInt:
		return fmt.Sprintf("%d", o.Int)
	case OperConstFloat:
		if o.Flt == math.Trunc(o.Flt) && math.Abs(o.Flt) < 1e15 {
			return fmt.Sprintf("%.1f", o.Flt)
		}
		return fmt.Sprintf("%g", o.Flt)
	case OperGlobal:
		return "@" + o.Sym
	case OperFunc:
		return "&" + o.Sym
	case OperNull:
		return "null"
	}
	return "<none>"
}

// SwitchCase is one arm of an OpSwitch.
type SwitchCase struct {
	Val int64
	Blk int
}

// Instr is a single SIR instruction. One struct covers all opcodes; unused
// fields are zero. Dst is -1 when the instruction produces no value.
type Instr struct {
	Op  Opcode
	Dst int
	Ty  Type // operation type: loaded/stored type, alloca element type, bin/cmp type, cast source type
	Ty2 Type // cast destination type

	A, B, C Operand // generic inputs (store value in A; select arms in B, C)
	Addr    Operand // load/store/gep base pointer

	Bin    BinOp
	Pred   Pred
	Cast   CastOp
	Stride int64 // gep: byte stride multiplied with index A

	Callee    Operand
	Args      []Operand
	FixedArgs int // number of fixed (non-variadic) parameters at this call site

	Blk0, Blk1 int
	Cases      []SwitchCase

	Name string // alloca: source variable name, for diagnostics
	Line int    // source line, for diagnostics

	// CType records the declared C type behind the instruction, when the
	// front end knows one: the element type of an alloca, or the target
	// pointee of a checked pointer cast. It rides through print/parse as a
	// "!ctype" suffix (like "!line") and is what the engines' dynamic
	// type-identity checks key on. Empty means "no declared type" — the
	// instruction behaves exactly as before the type plane existed.
	CType string
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator (br, condbr, switch, ret, unreachable).
type Block struct {
	Name   string
	Instrs []Instr
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// IsTerminator reports whether op ends a basic block.
func IsTerminator(op Opcode) bool {
	switch op {
	case OpBr, OpCondBr, OpSwitch, OpRet, OpUnreachable:
		return true
	}
	return false
}
