package ir

import (
	"fmt"
	"strings"
	"testing"
)

// genRNG is a deterministic generator for randomized round-trip tests.
type genRNG struct{ s uint64 }

func (r *genRNG) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 15
}

func (r *genRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// randOperand produces a random non-register operand or one of the given regs.
func randOperand(r *genRNG, regs int) Operand {
	switch r.intn(4) {
	case 0:
		return ConstInt(int64(r.intn(2000))-1000, I64)
	case 1:
		return ConstFloat(float64(r.intn(100))+0.5, F64)
	default:
		return Reg(r.intn(regs), I64)
	}
}

// randFunc builds a random but well-formed function: straight-line blocks of
// value ops with a conditional-branch chain ending in ret.
func randFunc(r *genRNG, name string, blocks int) *Func {
	f := &Func{Name: name, Sig: &FuncType{Ret: I64, Params: []Type{I64, I64}}}
	f.NumRegs = 2
	for b := 0; b < blocks; b++ {
		blk := &Block{Name: fmt.Sprintf("b%d", b)}
		n := 1 + r.intn(5)
		for i := 0; i < n; i++ {
			dst := f.NewReg()
			switch r.intn(4) {
			case 0:
				blk.Instrs = append(blk.Instrs, Instr{
					Op: OpBin, Dst: dst, Ty: I64, Bin: BinOp(r.intn(int(Xor) + 1)),
					A: randOperand(r, f.NumRegs), B: randOperand(r, f.NumRegs),
				})
			case 1:
				blk.Instrs = append(blk.Instrs, Instr{
					Op: OpCmp, Dst: dst, Ty: I64, Pred: Pred(r.intn(int(Uge) + 1)),
					A: randOperand(r, f.NumRegs), B: randOperand(r, f.NumRegs),
				})
			case 2:
				blk.Instrs = append(blk.Instrs, Instr{
					Op: OpCast, Dst: dst, Cast: Trunc, Ty: I64, Ty2: I32,
					A: randOperand(r, f.NumRegs),
				})
			default:
				blk.Instrs = append(blk.Instrs, Instr{
					Op: OpSelect, Dst: dst,
					A: randOperand(r, f.NumRegs), Ty: I64,
					B: randOperand(r, f.NumRegs), C: randOperand(r, f.NumRegs),
				})
			}
		}
		if b == blocks-1 {
			blk.Instrs = append(blk.Instrs, Instr{Op: OpRet, Ty: I64, A: randOperand(r, f.NumRegs)})
		} else if r.intn(2) == 0 {
			blk.Instrs = append(blk.Instrs, Instr{Op: OpBr, Blk0: b + 1})
		} else {
			blk.Instrs = append(blk.Instrs, Instr{
				Op: OpCondBr, A: randOperand(r, f.NumRegs),
				Blk0: b + 1, Blk1: blocks - 1,
			})
		}
		f.Blocks = append(f.Blocks, blk)
	}
	return f
}

// TestRandomizedRoundTrip generates random modules and checks
// print -> parse -> print is a fixpoint and verification holds.
func TestRandomizedRoundTrip(t *testing.T) {
	r := &genRNG{s: 42}
	for trial := 0; trial < 40; trial++ {
		m := NewModule(fmt.Sprintf("rand%d", trial))
		for fi := 0; fi < 1+r.intn(3); fi++ {
			m.AddFunc(randFunc(r, fmt.Sprintf("f%d", fi), 2+r.intn(4)))
		}
		if err := Verify(m); err != nil {
			t.Fatalf("trial %d: generated module invalid: %v", trial, err)
		}
		text1 := Print(m)
		m2, err := Parse(text1)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, text1)
		}
		text2 := Print(m2)
		if text1 != text2 {
			// Show the first differing line for debuggability.
			l1 := strings.Split(text1, "\n")
			l2 := strings.Split(text2, "\n")
			for i := range l1 {
				if i >= len(l2) || l1[i] != l2[i] {
					t.Fatalf("trial %d: line %d differs:\n  %q\n  %q", trial, i, l1[i], l2[i])
				}
			}
			t.Fatalf("trial %d: texts differ in length", trial)
		}
	}
}

// TestLineMetadataRoundTrip asserts that source-line metadata survives
// print -> parse on every instruction form, including the bin/cast forms
// (which return early in the parser) and terminators. Historically Print
// dropped Line and Parse repointed it at the IR-text token line, so a
// round-tripped module produced diagnostics with wrong line numbers.
func TestLineMetadataRoundTrip(t *testing.T) {
	f := &Func{Name: "f", Sig: &FuncType{Ret: I64, Params: []Type{I64, I64}}}
	f.NumRegs = 2
	b0 := &Block{Name: "b0"}
	b0.Instrs = []Instr{
		{Op: OpAlloca, Dst: f.NewReg(), Ty: I64, Name: "x", Line: 2},
		{Op: OpStore, Ty: I64, A: Reg(0, I64), Addr: Reg(2, nil), Line: 3},
		{Op: OpLoad, Dst: f.NewReg(), Ty: I64, Addr: Reg(2, nil), Line: 4},
		{Op: OpBin, Dst: f.NewReg(), Ty: I64, Bin: Add, A: Reg(3, I64), B: Reg(1, I64), Line: 5},
		{Op: OpCast, Dst: f.NewReg(), Cast: Trunc, Ty: I64, Ty2: I32, A: Reg(4, I64), Line: 6},
		{Op: OpCmp, Dst: f.NewReg(), Ty: I64, Pred: Slt, A: Reg(4, I64), B: Reg(1, I64), Line: 7},
		{Op: OpGEP, Dst: f.NewReg(), Addr: Reg(2, nil), Stride: 8, A: Reg(1, I64), Line: 8},
		{Op: OpCall, Dst: f.NewReg(), Ty: I64, Callee: FuncRef("f"),
			Args: []Operand{Reg(4, I64), Reg(1, I64)}, FixedArgs: 2, Line: 9},
		{Op: OpCondBr, A: Reg(6, I64), Blk0: 1, Blk1: 1, Line: 10},
	}
	b1 := &Block{Name: "b1"}
	b1.Instrs = []Instr{
		{Op: OpRet, Ty: I64, A: Reg(8, I64), Line: 11},
	}
	f.Blocks = []*Block{b0, b1}
	m := NewModule("lines")
	m.AddFunc(f)
	if err := Verify(m); err != nil {
		t.Fatalf("module invalid: %v", err)
	}
	text1 := Print(m)
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text1)
	}
	f2 := m2.Funcs[0]
	for bi, blk := range f.Blocks {
		for i := range blk.Instrs {
			want := blk.Instrs[i].Line
			got := f2.Blocks[bi].Instrs[i].Line
			if got != want {
				t.Errorf("block %d instr %d: Line = %d after round trip, want %d",
					bi, i, got, want)
			}
		}
	}
	if text2 := Print(m2); text1 != text2 {
		t.Fatalf("print/parse/print not a fixpoint:\n%s\n---\n%s", text1, text2)
	}
	// An instruction without metadata must stay at "unknown" (0), not be
	// repointed at its IR-text line.
	m3, err := Parse("module \"noline\"\nfunc @g fn() i64 regs 0 {\nb0:\n  ret i64 7\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := m3.Funcs[0].Blocks[0].Instrs[0].Line; got != 0 {
		t.Fatalf("unannotated instr Line = %d, want 0", got)
	}
}

// TestArithHelpersAgainstGo cross-checks the shared ALU against Go's own
// operators at full width.
func TestArithHelpersAgainstGo(t *testing.T) {
	r := &genRNG{s: 7}
	for i := 0; i < 2000; i++ {
		a := int64(r.next()) - int64(r.next())
		b := int64(r.next()) - int64(r.next())
		if v, ok := EvalIntBin(Add, 64, a, b); !ok || v != a+b {
			t.Fatalf("add: %d", i)
		}
		if v, ok := EvalIntBin(Mul, 64, a, b); !ok || v != a*b {
			t.Fatalf("mul: %d", i)
		}
		if b != 0 {
			if v, ok := EvalIntBin(UDiv, 64, a, b); !ok || v != int64(uint64(a)/uint64(b)) {
				t.Fatalf("udiv: %d", i)
			}
		}
		if EvalIntCmp(Ult, 64, a, b) != (uint64(a) < uint64(b)) {
			t.Fatalf("ult: %d", i)
		}
		if EvalIntCmp(Slt, 64, a, b) != (a < b) {
			t.Fatalf("slt: %d", i)
		}
	}
	// Narrow-width normalization.
	if v, _ := EvalIntBin(Add, 8, 127, 1); v != -128 {
		t.Errorf("i8 overflow = %d", v)
	}
	if v, _ := EvalIntBin(Shl, 16, 1, 15); v != -32768 {
		t.Errorf("i16 shl = %d", v)
	}
	if _, ok := EvalIntBin(SDiv, 32, 5, 0); ok {
		t.Error("division by zero must not be ok")
	}
	if v, _ := EvalIntBin(SDiv, 64, -9223372036854775808, -1); v != -9223372036854775808 {
		t.Error("INT_MIN / -1 should wrap, not panic")
	}
}

// TestEvalCastTable pins down conversion semantics.
func TestEvalCastTable(t *testing.T) {
	cases := []struct {
		op       CastOp
		from, to int
		i        int64
		f        float64
		wantI    int64
		wantF    float64
		isFloat  bool
	}{
		{Trunc, 64, 8, 0x1FF, 0, -1, 0, false},
		{ZExt, 8, 32, -1, 0, 255, 0, false},
		{SExt, 8, 32, -1, 0, -1, 0, false},
		{FPToSI, 64, 32, 0, 3.9, 3, 0, false},
		{FPToSI, 64, 32, 0, -3.9, -3, 0, false},
		{SIToFP, 64, 64, 42, 0, 0, 42.0, true},
		{UIToFP, 8, 64, -1, 0, 0, 255.0, true},
		{FPTrunc, 64, 32, 0, 1.1, 0, float64(float32(1.1)), true},
	}
	for i, c := range cases {
		gi, gf, isF := EvalCast(c.op, c.from, c.to, c.i, c.f)
		if isF != c.isFloat {
			t.Errorf("case %d: isFloat = %v", i, isF)
			continue
		}
		if isF && gf != c.wantF || !isF && gi != c.wantI {
			t.Errorf("case %d (%v): got (%d, %g), want (%d, %g)", i, c.op, gi, gf, c.wantI, c.wantF)
		}
	}
}
