package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural invariants of a module. Engines assume these hold;
// the front end and optimizer must keep them true.
//
// Invariants:
//   - every block is non-empty and ends in exactly one terminator,
//   - branch targets are valid block indices,
//   - registers are in range [0, NumRegs),
//   - operands referencing globals/functions resolve within the module,
//   - call instructions to known functions pass at least the fixed arg count.
func Verify(m *Module) error {
	var errs []error
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		if len(f.Blocks) == 0 {
			errs = append(errs, fmt.Errorf("func %s: no blocks", f.Name))
			continue
		}
		for bi, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				errs = append(errs, fmt.Errorf("func %s block %s: empty", f.Name, b.Name))
				continue
			}
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				last := ii == len(b.Instrs)-1
				if IsTerminator(in.Op) != last {
					errs = append(errs, fmt.Errorf("func %s block %s instr %d: terminator placement", f.Name, b.Name, ii))
				}
				if err := verifyInstr(m, f, in); err != nil {
					errs = append(errs, fmt.Errorf("func %s block %s instr %d: %w", f.Name, b.Name, ii, err))
				}
			}
			_ = bi
		}
	}
	return errors.Join(errs...)
}

func verifyInstr(m *Module, f *Func, in *Instr) error {
	checkOp := func(o Operand) error {
		switch o.Kind {
		case OperReg:
			if o.Reg < 0 || o.Reg >= f.NumRegs {
				return fmt.Errorf("register %%r%d out of range (regs=%d)", o.Reg, f.NumRegs)
			}
		case OperGlobal:
			if m.Global(o.Sym) == nil {
				return fmt.Errorf("unknown global @%s", o.Sym)
			}
		case OperFunc:
			if m.Func(o.Sym) == nil {
				return fmt.Errorf("unknown function &%s", o.Sym)
			}
		}
		return nil
	}
	checkBlk := func(idx int) error {
		if idx < 0 || idx >= len(f.Blocks) {
			return fmt.Errorf("branch target %d out of range", idx)
		}
		return nil
	}
	for _, o := range []Operand{in.A, in.B, in.C, in.Addr, in.Callee} {
		if o.Kind != OperNone {
			if err := checkOp(o); err != nil {
				return err
			}
		}
	}
	for _, o := range in.Args {
		if err := checkOp(o); err != nil {
			return err
		}
		if o.Ty == nil {
			return fmt.Errorf("call argument missing type")
		}
	}
	switch in.Op {
	case OpInvalid:
		return fmt.Errorf("invalid opcode")
	case OpAlloca, OpLoad, OpBin, OpCmp, OpGEP, OpSelect:
		if in.Dst < 0 {
			return fmt.Errorf("%v: missing destination", in.Op)
		}
		if in.Dst >= f.NumRegs {
			return fmt.Errorf("destination %%r%d out of range", in.Dst)
		}
	case OpCast:
		if in.Dst < 0 || in.Ty == nil || in.Ty2 == nil {
			return fmt.Errorf("cast: missing dst or types")
		}
		if in.Dst >= f.NumRegs {
			return fmt.Errorf("destination %%r%d out of range", in.Dst)
		}
	case OpBr:
		return checkBlk(in.Blk0)
	case OpCondBr:
		if err := checkBlk(in.Blk0); err != nil {
			return err
		}
		return checkBlk(in.Blk1)
	case OpSwitch:
		if err := checkBlk(in.Blk0); err != nil {
			return err
		}
		for _, c := range in.Cases {
			if err := checkBlk(c.Blk); err != nil {
				return err
			}
		}
	case OpCall:
		if in.Dst >= f.NumRegs {
			return fmt.Errorf("destination %%r%d out of range", in.Dst)
		}
		if in.Callee.Kind == OperFunc {
			callee := m.Func(in.Callee.Sym)
			if callee != nil && callee.Sig != nil {
				if len(in.Args) < len(callee.Sig.Params) && callee.Sig.Variadic {
					return fmt.Errorf("call to %s: %d args < %d fixed params", callee.Name, len(in.Args), len(callee.Sig.Params))
				}
			}
		}
	}
	if in.Op == OpLoad || in.Op == OpStore {
		if in.Ty == nil {
			return fmt.Errorf("memory op missing type")
		}
		if IsAggregate(in.Ty) {
			return fmt.Errorf("memory op on aggregate type %s (front end must scalarize)", in.Ty)
		}
	}
	return nil
}
