package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in SIR textual form. The output parses back with
// Parse into an equivalent module (round-trip property).
func Print(m *Module) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %q\n", m.Name)
	names := make([]string, 0, len(m.Structs))
	for n := range m.Structs {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		st := m.Structs[n]
		// Unions print with their own keyword so the parser can restore the
		// all-fields-at-offset-0 layout instead of recomputing struct offsets.
		kw := "struct"
		if st.IsUnion() {
			kw = "union"
		}
		fmt.Fprintf(&b, "%s %%%s {", kw, st.Name)
		for i, f := range st.Fields {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " %s %s", f.Ty, f.Name)
		}
		b.WriteString(" }\n")
	}
	for _, g := range m.Globals {
		b.WriteString("global @")
		b.WriteString(g.Name)
		if g.IsConst {
			b.WriteString(" const")
		}
		b.WriteString(" ")
		b.WriteString(g.Ty.String())
		b.WriteString(" = ")
		printConst(&b, g.Init, g.Ty)
		if g.CType != "" {
			fmt.Fprintf(&b, " !ctype %q", g.CType)
		}
		b.WriteString("\n")
	}
	for _, f := range m.Funcs {
		if f.IsDecl {
			fmt.Fprintf(&b, "declare @%s %s\n", f.Name, f.Sig)
		}
	}
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		b.WriteString("\n")
		printFunc(&b, f)
	}
	return b.String()
}

// PrintFunc renders a single function (used in diagnostics and tests).
func PrintFunc(f *Func) string {
	var b strings.Builder
	printFunc(&b, f)
	return b.String()
}

func printFunc(b *strings.Builder, f *Func) {
	fmt.Fprintf(b, "func @%s %s regs %d", f.Name, f.Sig, f.NumRegs)
	if len(f.ParamNames) > 0 {
		b.WriteString(" names(")
		for i, n := range f.ParamNames {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(n)
		}
		b.WriteString(")")
	}
	b.WriteString(" {\n")
	for bi, blk := range f.Blocks {
		fmt.Fprintf(b, "%s:\n", blk.Name)
		for i := range blk.Instrs {
			b.WriteString("  ")
			printInstr(b, f, &blk.Instrs[i])
			// Metadata rides along as "!key value" suffixes so diagnostics
			// and the type-identity plane survive a print/parse round trip
			// (without !line the parser would repoint Line at the IR-text
			// token line; without !ctype checked casts would degrade to
			// plain moves).
			if blk.Instrs[i].CType != "" {
				fmt.Fprintf(b, " !ctype %q", blk.Instrs[i].CType)
			}
			if blk.Instrs[i].Line > 0 {
				fmt.Fprintf(b, " !line %d", blk.Instrs[i].Line)
			}
			b.WriteString("\n")
		}
		_ = bi
	}
	b.WriteString("}\n")
}

func blkName(f *Func, i int) string {
	if i < 0 || i >= len(f.Blocks) {
		return fmt.Sprintf("<bad:%d>", i)
	}
	return f.Blocks[i].Name
}

func printInstr(b *strings.Builder, f *Func, in *Instr) {
	switch in.Op {
	case OpAlloca:
		fmt.Fprintf(b, "%%r%d = alloca %s", in.Dst, in.Ty)
		if cnt, ok := in.CountOp(); ok {
			fmt.Fprintf(b, " count %s", cnt)
		}
		if in.Name != "" {
			fmt.Fprintf(b, " name %q", in.Name)
		}
	case OpLoad:
		fmt.Fprintf(b, "%%r%d = load %s, %s", in.Dst, in.Ty, in.Addr)
	case OpStore:
		fmt.Fprintf(b, "store %s %s, %s", in.Ty, in.A, in.Addr)
	case OpGEP:
		fmt.Fprintf(b, "%%r%d = gep %s, %d, %s", in.Dst, in.Addr, in.Stride, in.A)
	case OpBin:
		fmt.Fprintf(b, "%%r%d = %s %s %s, %s", in.Dst, in.Bin, in.Ty, in.A, in.B)
	case OpCmp:
		fmt.Fprintf(b, "%%r%d = cmp %s %s %s, %s", in.Dst, in.Pred, in.Ty, in.A, in.B)
	case OpCast:
		fmt.Fprintf(b, "%%r%d = %s %s %s to %s", in.Dst, in.Cast, in.Ty, in.A, in.Ty2)
	case OpSelect:
		fmt.Fprintf(b, "%%r%d = select %s, %s %s, %s", in.Dst, in.A, in.Ty, in.B, in.C)
	case OpCall:
		if in.Dst >= 0 {
			fmt.Fprintf(b, "%%r%d = call %s %s(", in.Dst, in.Ty, in.Callee)
		} else {
			fmt.Fprintf(b, "call void %s(", in.Callee)
		}
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s %s", a.Ty, a)
		}
		fmt.Fprintf(b, ") fixed %d", in.FixedArgs)
	case OpBr:
		fmt.Fprintf(b, "br %s", blkName(f, in.Blk0))
	case OpCondBr:
		fmt.Fprintf(b, "condbr %s, %s, %s", in.A, blkName(f, in.Blk0), blkName(f, in.Blk1))
	case OpSwitch:
		fmt.Fprintf(b, "switch %s %s, default %s [", in.Ty, in.A, blkName(f, in.Blk0))
		for i, c := range in.Cases {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%d: %s", c.Val, blkName(f, c.Blk))
		}
		b.WriteString("]")
	case OpRet:
		if in.A.Kind == OperNone {
			b.WriteString("ret void")
		} else {
			fmt.Fprintf(b, "ret %s %s", in.Ty, in.A)
		}
	case OpUnreachable:
		b.WriteString("unreachable")
	default:
		fmt.Fprintf(b, "<invalid op %d>", in.Op)
	}
}

// SetCount records a dynamic element count for an alloca.
func (in *Instr) SetCount(o Operand) { in.B = o }

// Count reports the alloca count operand and whether one is present.
func (in *Instr) CountOp() (Operand, bool) {
	if in.Op == OpAlloca && in.B.Kind != OperNone {
		return in.B, true
	}
	return Operand{}, false
}

func printConst(b *strings.Builder, c Const, ty Type) {
	switch v := c.(type) {
	case nil:
		b.WriteString("zero")
	case ConstZero:
		b.WriteString("zero")
	case ConstIntVal:
		fmt.Fprintf(b, "int %d", v.V)
	case ConstFloatVal:
		fmt.Fprintf(b, "float %g", v.V)
	case ConstBytes:
		fmt.Fprintf(b, "bytes %q", string(v.Data))
	case ConstArrayVal:
		b.WriteString("array [")
		for i, e := range v.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			printConst(b, e, nil)
		}
		b.WriteString("]")
	case ConstStructVal:
		b.WriteString("fields {")
		for i, e := range v.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			printConst(b, e, nil)
		}
		b.WriteString("}")
	case ConstGlobalRef:
		fmt.Fprintf(b, "addr @%s + %d", v.Sym, v.Off)
	case ConstFuncRef:
		fmt.Fprintf(b, "addr &%s", v.Sym)
	default:
		b.WriteString("<bad const>")
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
