package ir

import "math"

// This file is the scalar ALU shared by every execution engine. Integer
// registers hold values in canonical form: sign-extended to 64 bits at the
// operation's declared width. All engines (managed, native, instrumented)
// must agree on C arithmetic; centralizing it here keeps them consistent.

// SignExtend truncates v to the given bit width and sign-extends the result.
func SignExtend(v int64, bits int) int64 {
	if bits >= 64 {
		return v
	}
	shift := uint(64 - bits)
	return v << shift >> shift
}

// ZeroExtend truncates v to the given bit width without sign extension.
func ZeroExtend(v int64, bits int) int64 {
	if bits >= 64 {
		return v
	}
	return v & (1<<uint(bits) - 1)
}

// EvalIntBin computes an integer binary operation at the given width.
// ok is false for division or remainder by zero (the caller decides whether
// that traps, reports, or poisons).
func EvalIntBin(op BinOp, bits int, a, b int64) (v int64, ok bool) {
	switch op {
	case Add:
		v = a + b
	case Sub:
		v = a - b
	case Mul:
		v = a * b
	case SDiv:
		if b == 0 {
			return 0, false
		}
		if a == math.MinInt64 && b == -1 {
			v = a // wraps, as on AMD64 at width 64; narrower widths mask anyway
		} else {
			v = a / b
		}
	case UDiv:
		ub := uint64(ZeroExtend(b, bits))
		if bits >= 64 {
			ub = uint64(b)
		}
		if ub == 0 {
			return 0, false
		}
		ua := uint64(ZeroExtend(a, bits))
		if bits >= 64 {
			ua = uint64(a)
		}
		v = int64(ua / ub)
	case SRem:
		if b == 0 {
			return 0, false
		}
		if a == math.MinInt64 && b == -1 {
			v = 0
		} else {
			v = a % b
		}
	case URem:
		ub := uint64(ZeroExtend(b, bits))
		if bits >= 64 {
			ub = uint64(b)
		}
		if ub == 0 {
			return 0, false
		}
		ua := uint64(ZeroExtend(a, bits))
		if bits >= 64 {
			ua = uint64(a)
		}
		v = int64(ua % ub)
	case And:
		v = a & b
	case Or:
		v = a | b
	case Xor:
		v = a ^ b
	case Shl:
		v = a << (uint64(b) & 63)
	case LShr:
		ua := uint64(ZeroExtend(a, bits))
		if bits >= 64 {
			ua = uint64(a)
		}
		v = int64(ua >> (uint64(b) & 63))
	case AShr:
		v = a >> (uint64(b) & 63)
	default:
		return 0, false
	}
	return SignExtend(v, bits), true
}

// EvalFloatBin computes a floating binary operation at the given width.
func EvalFloatBin(op BinOp, bits int, a, b float64) float64 {
	var v float64
	switch op {
	case FAdd:
		v = a + b
	case FSub:
		v = a - b
	case FMul:
		v = a * b
	case FDiv:
		v = a / b
	case FRem:
		v = math.Mod(a, b)
	}
	if bits == 32 {
		return float64(float32(v))
	}
	return v
}

// EvalIntCmp evaluates an integer comparison at the given width.
func EvalIntCmp(p Pred, bits int, a, b int64) bool {
	switch p {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Slt:
		return a < b
	case Sle:
		return a <= b
	case Sgt:
		return a > b
	case Sge:
		return a >= b
	}
	ua, ub := uint64(ZeroExtend(a, bits)), uint64(ZeroExtend(b, bits))
	if bits >= 64 {
		ua, ub = uint64(a), uint64(b)
	}
	switch p {
	case Ult:
		return ua < ub
	case Ule:
		return ua <= ub
	case Ugt:
		return ua > ub
	case Uge:
		return ua >= ub
	}
	return false
}

// EvalFloatCmp evaluates an ordered float comparison.
func EvalFloatCmp(p Pred, a, b float64) bool {
	switch p {
	case FOeq:
		return a == b
	case FOne:
		return a != b
	case FOlt:
		return a < b
	case FOle:
		return a <= b
	case FOgt:
		return a > b
	case FOge:
		return a >= b
	}
	return false
}

// EvalIntCast applies an integer-to-integer or int/float cast where both
// sides are representable as (int64, float64) pairs.
//
// The boolean result selects which output is meaningful: isFloat=true means
// fOut, otherwise iOut.
func EvalCast(op CastOp, fromBits, toBits int, i int64, f float64) (iOut int64, fOut float64, isFloat bool) {
	switch op {
	case Trunc:
		return SignExtend(i, toBits), 0, false
	case ZExt:
		return SignExtend(ZeroExtend(i, fromBits), toBits), 0, false
	case SExt:
		return SignExtend(i, toBits), 0, false
	case FPTrunc:
		return 0, float64(float32(f)), true
	case FPExt:
		return 0, f, true
	case FPToSI:
		return SignExtend(clampToInt(f), toBits), 0, false
	case FPToUI:
		if f < 0 || math.IsNaN(f) {
			return 0, 0, false
		}
		if f >= 18446744073709551615.0 {
			return -1, 0, false
		}
		return SignExtend(int64(uint64(f)), toBits), 0, false
	case SIToFP:
		v := float64(i)
		if toBits == 32 {
			v = float64(float32(v))
		}
		return 0, v, true
	case UIToFP:
		u := uint64(ZeroExtend(i, fromBits))
		if fromBits >= 64 {
			u = uint64(i)
		}
		v := float64(u)
		if toBits == 32 {
			v = float64(float32(v))
		}
		return 0, v, true
	}
	return i, f, false
}

// clampToInt converts a float to int64 with saturation (x86 semantics are
// UB-adjacent; saturation keeps all engines deterministic and identical).
func clampToInt(f float64) int64 {
	if math.IsNaN(f) {
		return 0
	}
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	if f <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(f)
}
