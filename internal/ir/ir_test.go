package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeSizes(t *testing.T) {
	tests := []struct {
		ty    Type
		size  int64
		align int64
	}{
		{I1, 1, 1},
		{I8, 1, 1},
		{I16, 2, 2},
		{I32, 4, 4},
		{I48, 6, 8},
		{I64, 8, 8},
		{F32, 4, 4},
		{F64, 8, 8},
		{BytePtr, 8, 8},
		{&ArrayType{Elem: I32, Len: 10}, 40, 4},
		{&ArrayType{Elem: I8, Len: 3}, 3, 1},
	}
	for _, tt := range tests {
		if got := tt.ty.Size(); got != tt.size {
			t.Errorf("%s: size = %d, want %d", tt.ty, got, tt.size)
		}
		if got := tt.ty.Align(); got != tt.align {
			t.Errorf("%s: align = %d, want %d", tt.ty, got, tt.align)
		}
	}
}

func TestStructLayout(t *testing.T) {
	// struct { char c; int i; char c2; double d; } — SysV AMD64 layout.
	st := NewStruct("s", []Field{
		{Name: "c", Ty: I8},
		{Name: "i", Ty: I32},
		{Name: "c2", Ty: I8},
		{Name: "d", Ty: F64},
	})
	wantOff := []int64{0, 4, 8, 16}
	for i, w := range wantOff {
		if st.Fields[i].Offset != w {
			t.Errorf("field %d offset = %d, want %d", i, st.Fields[i].Offset, w)
		}
	}
	if st.Size() != 24 {
		t.Errorf("size = %d, want 24", st.Size())
	}
	if st.Align() != 8 {
		t.Errorf("align = %d, want 8", st.Align())
	}
}

func TestStructFieldAt(t *testing.T) {
	st := NewStruct("s", []Field{
		{Name: "a", Ty: I32},
		{Name: "b", Ty: I32},
		{Name: "arr", Ty: &ArrayType{Elem: I8, Len: 8}},
	})
	cases := []struct {
		off  int64
		want int
	}{
		{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {15, 2}, {16, -1}, {-1, -1},
	}
	for _, c := range cases {
		if got := st.FieldAt(c.off); got != c.want {
			t.Errorf("FieldAt(%d) = %d, want %d", c.off, got, c.want)
		}
	}
}

func TestTypesEqual(t *testing.T) {
	if !TypesEqual(I32, IntN(32)) {
		t.Error("i32 != i32")
	}
	if TypesEqual(I32, I64) {
		t.Error("i32 == i64")
	}
	if !TypesEqual(Ptr(I32), Ptr(I8)) {
		t.Error("pointers should compare equal regardless of pointee")
	}
	a := &ArrayType{Elem: I32, Len: 4}
	b := &ArrayType{Elem: I32, Len: 4}
	c := &ArrayType{Elem: I32, Len: 5}
	if !TypesEqual(a, b) || TypesEqual(a, c) {
		t.Error("array equality broken")
	}
}

func TestAlignUpProperty(t *testing.T) {
	f := func(v uint16, aExp uint8) bool {
		a := int64(1) << (aExp % 4) // 1,2,4,8
		r := alignUp(int64(v), a)
		return r >= int64(v) && r%a == 0 && r-int64(v) < a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

const roundTripSrc = `module "rt"
struct %point { i32 x, f64 y }
global @msg const [6 x i8] = bytes "hello\x00"
global @zeros [7 x i32] = zero
global @tab [2 x ptr] = array [addr @msg + 0, addr &main]
declare @putchar fn(i32) i32
func @main fn(i32, ptr) i32 regs 10 names(argc, argv) {
entry:
  %r2 = alloca [10 x i32] name "arr"
  %r3 = gep %r2, 4, %r0
  store i32 5, %r3
  %r4 = load i32, %r3
  %r5 = add i32 %r4, 1
  %r6 = cmp slt i32 %r5, 10
  condbr %r6, then, done
then:
  %r7 = call i32 &putchar(i32 65) fixed 1
  %r8 = sitofp i32 %r7 to f64
  %r9 = select %r6, i32 1, 2
  switch i32 %r9, default done [1: then, 2: done]
done:
  ret i32 0
}
`

func TestParsePrintRoundTrip(t *testing.T) {
	m, err := Parse(roundTripSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	out1 := Print(m)
	m2, err := Parse(out1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out1)
	}
	out2 := Print(m2)
	if out1 != out2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		`module "x" bogus`,
		`module "x" global @g i32 =`,
		`module "x" func @f fn() void regs 0 { entry: br nowhere }`,
		`module "x" struct %s { i32 }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestVerifyCatchesBadRegister(t *testing.T) {
	m := NewModule("v")
	f := &Func{Name: "f", Sig: &FuncType{Ret: Void}, NumRegs: 1}
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{
		{Op: OpBin, Dst: 0, Ty: I32, Bin: Add, A: Reg(5, I32), B: ConstInt(1, I32)},
		{Op: OpRet},
	}}}
	m.AddFunc(f)
	if err := Verify(m); err == nil {
		t.Error("Verify accepted out-of-range register")
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("v")
	f := &Func{Name: "f", Sig: &FuncType{Ret: Void}, NumRegs: 1}
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{
		{Op: OpBin, Dst: 0, Ty: I32, Bin: Add, A: ConstInt(1, I32), B: ConstInt(1, I32)},
	}}}
	m.AddFunc(f)
	if err := Verify(m); err == nil {
		t.Error("Verify accepted block without terminator")
	}
}

func TestModuleCloneIsDeep(t *testing.T) {
	m, err := Parse(roundTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	// Mutating the clone must not affect the original.
	c.Func("main").Blocks[0].Instrs[0].Name = "mutated"
	if m.Func("main").Blocks[0].Instrs[0].Name == "mutated" {
		t.Error("Clone shares instruction storage")
	}
	if c.Func("putchar") == nil || !c.Func("putchar").IsDecl {
		t.Error("Clone lost declaration")
	}
}

func TestConstZeroDetection(t *testing.T) {
	cases := []struct {
		c    Const
		want bool
	}{
		{nil, true},
		{ConstZero{}, true},
		{ConstIntVal{V: 0}, true},
		{ConstIntVal{V: 3}, false},
		{ConstBytes{Data: []byte{0, 0}}, true},
		{ConstBytes{Data: []byte("a")}, false},
		{ConstArrayVal{Elems: []Const{ConstIntVal{V: 0}, ConstIntVal{V: 1}}}, false},
	}
	for i, c := range cases {
		if got := ZeroConst(c.c); got != c.want {
			t.Errorf("case %d: ZeroConst = %v, want %v", i, got, c.want)
		}
	}
}

func TestFuncHelpers(t *testing.T) {
	m, err := Parse(roundTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("main")
	if f.BlockIndex("then") != 1 || f.BlockIndex("nope") != -1 {
		t.Error("BlockIndex wrong")
	}
	if f.InstrCount() == 0 {
		t.Error("InstrCount = 0")
	}
	if m.FuncIndex("main") < 0 || m.FuncIndex("ghost") != -1 {
		t.Error("FuncIndex wrong")
	}
	if !strings.Contains(PrintFunc(f), "func @main") {
		t.Error("PrintFunc missing header")
	}
}

func TestModuleReindex(t *testing.T) {
	m, err := Parse(roundTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the first function directly and reindex.
	removed := m.Funcs[0].Name
	m.Funcs = m.Funcs[1:]
	m.Reindex()
	if m.Func(removed) != nil && m.Funcs[0].Name != removed {
		t.Errorf("%s should be gone after reindex", removed)
	}
	for _, f := range m.Funcs {
		if m.FuncIndex(f.Name) < 0 {
			t.Errorf("%s lost its index", f.Name)
		}
	}
}
