package ir

import "fmt"

// Func is an SIR function: a register machine with basic blocks.
// Parameters arrive in registers 0..len(Sig.Params)-1.
type Func struct {
	Name       string
	Sig        *FuncType
	ParamNames []string
	NumRegs    int
	Blocks     []*Block
	IsDecl     bool // declaration only: resolved to a builtin at run time
	SourceFile string
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() int {
	r := f.NumRegs
	f.NumRegs++
	return r
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// BlockIndex returns the index of the named block, or -1.
func (f *Func) BlockIndex(name string) int {
	for i, b := range f.Blocks {
		if b.Name == name {
			return i
		}
	}
	return -1
}

// InstrCount returns the total number of instructions in the function.
func (f *Func) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Const is a compile-time constant used to initialize globals.
type Const interface{ constNode() }

// ConstIntVal is an integer constant of a given type.
type ConstIntVal struct {
	Ty Type
	V  int64
}

// ConstFloatVal is a floating-point constant.
type ConstFloatVal struct {
	Ty Type
	V  float64
}

// ConstBytes is a byte-string constant (C string literals, including NUL).
type ConstBytes struct {
	Data []byte
}

// ConstArrayVal is an array of constants.
type ConstArrayVal struct {
	Ty    *ArrayType
	Elems []Const // may be shorter than Ty.Len; the rest is zero
}

// ConstStructVal is a struct constant.
type ConstStructVal struct {
	Ty     *StructType
	Fields []Const
}

// ConstZero is a zero initializer of any type.
type ConstZero struct {
	Ty Type
}

// ConstGlobalRef is the address of another global plus a byte offset
// (e.g. a pointer array holding string-literal addresses).
type ConstGlobalRef struct {
	Sym string
	Off int64
}

// ConstFuncRef is the address of a function.
type ConstFuncRef struct {
	Sym string
}

func (ConstIntVal) constNode()    {}
func (ConstFloatVal) constNode()  {}
func (ConstBytes) constNode()     {}
func (ConstArrayVal) constNode()  {}
func (ConstStructVal) constNode() {}
func (ConstZero) constNode()      {}
func (ConstGlobalRef) constNode() {}
func (ConstFuncRef) constNode()   {}

// Global is a module-level variable (static storage).
type Global struct {
	Name    string
	Ty      Type
	Init    Const // nil means zero-initialized
	IsConst bool  // declared const (enables front-end constant folding)
	// CType is the declared C type of the global as the front end spelled
	// it (diagnostics and the dynamic type-identity plane). Empty when
	// unknown; round-trips through print/parse as a "!ctype" suffix.
	CType string
}

// Module is a complete translation unit: the user program plus the libc it
// was linked with.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func
	Structs map[string]*StructType

	// ContentID, when non-empty, is a content address for the whole module,
	// stamped by the compilation pipeline before publication: the full hash
	// of the input file set plus the flavor and opt level that produced it.
	// Consumers (the executable-code cache) may key on it instead of
	// re-hashing the printed IR. It is a claim of immutability — never set
	// it on a module that might still be mutated — and it is deliberately
	// not printed, parsed, or cloned: a hand-built, parsed, or cloned module
	// has no pipeline identity.
	ContentID string

	funcIdx   map[string]int
	globalIdx map[string]int
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:      name,
		Structs:   map[string]*StructType{},
		funcIdx:   map[string]int{},
		globalIdx: map[string]int{},
	}
}

// AddFunc appends f, replacing any previous declaration with the same name.
func (m *Module) AddFunc(f *Func) {
	if i, ok := m.funcIdx[f.Name]; ok {
		// A definition replaces a declaration (and vice versa is ignored).
		if m.Funcs[i].IsDecl || !f.IsDecl {
			m.Funcs[i] = f
		}
		return
	}
	m.funcIdx[f.Name] = len(m.Funcs)
	m.Funcs = append(m.Funcs, f)
}

// AddGlobal appends g to the module.
func (m *Module) AddGlobal(g *Global) error {
	if _, ok := m.globalIdx[g.Name]; ok {
		return fmt.Errorf("ir: duplicate global %q", g.Name)
	}
	m.globalIdx[g.Name] = len(m.Globals)
	m.Globals = append(m.Globals, g)
	return nil
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	if i, ok := m.funcIdx[name]; ok {
		return m.Funcs[i]
	}
	return nil
}

// Global returns the named global, or nil.
func (m *Module) Global(name string) *Global {
	if i, ok := m.globalIdx[name]; ok {
		return m.Globals[i]
	}
	return nil
}

// FuncIndex returns the index of the named function, or -1.
func (m *Module) FuncIndex(name string) int {
	if i, ok := m.funcIdx[name]; ok {
		return i
	}
	return -1
}

// GlobalIndex returns the index of the named global, or -1. The tier-1
// compiler resolves global operands to indices at compile time and back to
// per-engine objects at run time, so compiled code depends only on the
// module — never on one engine's global layout.
func (m *Module) GlobalIndex(name string) int {
	if i, ok := m.globalIdx[name]; ok {
		return i
	}
	return -1
}

// Reindex rebuilds the symbol maps after direct slice manipulation
// (used by the optimizer when it removes dead functions).
func (m *Module) Reindex() {
	m.funcIdx = make(map[string]int, len(m.Funcs))
	m.globalIdx = make(map[string]int, len(m.Globals))
	for i, f := range m.Funcs {
		m.funcIdx[f.Name] = i
	}
	for i, g := range m.Globals {
		m.globalIdx[g.Name] = i
	}
}

// Clone returns a deep copy of the module: functions (blocks, instructions,
// operand/case slices), globals (including their initializer constants),
// and the struct-name index. Types themselves (*StructType etc.) are shared
// — they are laid out once by the front end and immutable afterwards.
//
// Clone exists so one front-end compile can serve several engine
// configurations: the optimizer and the tier-1 JIT mutate clones, never the
// cached original, which internal/pipeline shares across concurrent runs.
func (m *Module) Clone() *Module {
	out := NewModule(m.Name)
	for name, st := range m.Structs {
		out.Structs[name] = st
	}
	for _, g := range m.Globals {
		ng := &Global{Name: g.Name, Ty: g.Ty, Init: CloneConst(g.Init), IsConst: g.IsConst, CType: g.CType}
		out.globalIdx[ng.Name] = len(out.Globals)
		out.Globals = append(out.Globals, ng)
	}
	for _, f := range m.Funcs {
		out.AddFunc(cloneFunc(f))
	}
	return out
}

// CloneConst deep-copies an initializer constant, including the slices
// inside aggregate constants, so a clone's globals share no mutable state
// with the original.
func CloneConst(c Const) Const {
	switch v := c.(type) {
	case nil:
		return nil
	case ConstBytes:
		return ConstBytes{Data: append([]byte(nil), v.Data...)}
	case ConstArrayVal:
		elems := make([]Const, len(v.Elems))
		for i, e := range v.Elems {
			elems[i] = CloneConst(e)
		}
		return ConstArrayVal{Ty: v.Ty, Elems: elems}
	case ConstStructVal:
		fields := make([]Const, len(v.Fields))
		for i, e := range v.Fields {
			fields[i] = CloneConst(e)
		}
		return ConstStructVal{Ty: v.Ty, Fields: fields}
	default:
		// Value types (ConstIntVal, ConstFloatVal, ConstZero, ConstGlobalRef,
		// ConstFuncRef) carry no mutable state.
		return c
	}
}

func cloneFunc(f *Func) *Func {
	nf := &Func{
		Name:       f.Name,
		Sig:        f.Sig,
		ParamNames: append([]string(nil), f.ParamNames...),
		NumRegs:    f.NumRegs,
		IsDecl:     f.IsDecl,
		SourceFile: f.SourceFile,
	}
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name, Instrs: append([]Instr(nil), b.Instrs...)}
		for i := range nb.Instrs {
			if nb.Instrs[i].Args != nil {
				nb.Instrs[i].Args = append([]Operand(nil), nb.Instrs[i].Args...)
			}
			if nb.Instrs[i].Cases != nil {
				nb.Instrs[i].Cases = append([]SwitchCase(nil), nb.Instrs[i].Cases...)
			}
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}

// ZeroConst reports whether c is (recursively) all zero.
func ZeroConst(c Const) bool {
	switch v := c.(type) {
	case nil:
		return true
	case ConstZero:
		return true
	case ConstIntVal:
		return v.V == 0
	case ConstFloatVal:
		return v.V == 0
	case ConstBytes:
		for _, b := range v.Data {
			if b != 0 {
				return false
			}
		}
		return true
	case ConstArrayVal:
		for _, e := range v.Elems {
			if !ZeroConst(e) {
				return false
			}
		}
		return true
	case ConstStructVal:
		for _, e := range v.Fields {
			if !ZeroConst(e) {
				return false
			}
		}
		return true
	}
	return false
}
