package nativemem

import (
	"testing"
	"testing/quick"
)

func TestMapAndAccess(t *testing.T) {
	m := New()
	m.Map(0x1000, 100)
	if !m.Mapped(0x1000, 100) {
		t.Error("mapped range not mapped")
	}
	if m.Mapped(0, 1) {
		t.Error("null page should be unmapped")
	}
	if f := m.Store(0x1000, 8, 0x1122334455667788); f != nil {
		t.Fatal(f)
	}
	v, f := m.Load(0x1000, 8)
	if f != nil || v != 0x1122334455667788 {
		t.Errorf("load = %#x, %v", v, f)
	}
	// little-endian byte order
	b, _ := m.LoadByte(0x1000)
	if b != 0x88 {
		t.Errorf("first byte = %#x, want 0x88", b)
	}
}

func TestFaultOnUnmapped(t *testing.T) {
	m := New()
	if _, f := m.Load(0x5000, 4); f == nil {
		t.Error("load of unmapped memory must fault")
	}
	if f := m.Store(0, 1, 1); f == nil || !f.Write {
		t.Errorf("store to NULL page: %v", f)
	}
	f := &Fault{Addr: 0x10, Write: false}
	if f.Error() == "" {
		t.Error("fault message empty")
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	m.Map(PageSize-4, 8) // maps pages 0 and 1
	if f := m.Store(PageSize-2, 4, 0xAABBCCDD); f != nil {
		t.Fatal(f)
	}
	v, f := m.Load(PageSize-2, 4)
	if f != nil || v != 0xAABBCCDD {
		t.Errorf("cross-page round trip: %#x %v", v, f)
	}
}

func TestPartialPageFaultOnStraddle(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize) // page 1 only
	// Straddling into unmapped page 2 must fault.
	if _, f := m.Load(0x1000+PageSize-2, 4); f == nil {
		t.Error("straddle into unmapped page should fault")
	}
}

func TestUnmap(t *testing.T) {
	m := New()
	m.Map(0x2000, 2*PageSize)
	m.Unmap(0x2000, PageSize)
	if m.Mapped(0x2000, 1) {
		t.Error("unmapped page still accessible")
	}
	if !m.Mapped(0x2000+PageSize, 1) {
		t.Error("second page should survive")
	}
}

func TestBytesAndCString(t *testing.T) {
	m := New()
	m.Map(0x3000, 64)
	if f := m.WriteBytes(0x3000, []byte("hello\x00world")); f != nil {
		t.Fatal(f)
	}
	s, f := m.CString(0x3000, 64)
	if f != nil || s != "hello" {
		t.Errorf("CString = %q, %v", s, f)
	}
	data, f := m.ReadBytes(0x3006, 5)
	if f != nil || string(data) != "world" {
		t.Errorf("ReadBytes = %q", data)
	}
}

func TestLoadStoreRoundTripProperty(t *testing.T) {
	m := New()
	m.Map(0x4000, 4*PageSize)
	f := func(off uint16, v uint64, szSel uint8) bool {
		sizes := []int64{1, 2, 4, 8}
		size := sizes[szSel%4]
		addr := 0x4000 + uint64(off)%(4*PageSize-8)
		if fa := m.Store(addr, size, v); fa != nil {
			return false
		}
		got, fa := m.Load(addr, size)
		if fa != nil {
			return false
		}
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*uint(size)) - 1
		}
		return got == v&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjacentWritesAreSilent(t *testing.T) {
	// The property the whole paper rests on: on the native model, an
	// overflow of one object silently lands in its neighbour.
	m := New()
	m.Map(0x5000, 64)
	m.Store(0x5000, 8, 1) // "object A"
	m.Store(0x5008, 8, 2) // "object B" right next to it
	// Overflow A by 8 bytes: corrupts B, no fault.
	if f := m.Store(0x5008, 8, 99); f != nil {
		t.Fatal("intra-page overflow must not fault")
	}
	v, _ := m.Load(0x5008, 8)
	if v != 99 {
		t.Error("corruption did not land")
	}
}
