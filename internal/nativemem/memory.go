// Package nativemem simulates the machine memory model that the paper's
// baseline tools operate on: a flat, byte-addressable 64-bit address space
// with page-granular protection. There are no bounds, no types, and no
// object identities — an out-of-bounds access lands in whatever bytes are
// adjacent, and only touching an unmapped page traps (the SIGSEGV model).
// This is precisely the "native execution model" Safe Sulong abstracts from.
package nativemem

import "fmt"

// PageSize is the simulated page size (4 KiB, as on AMD64).
const PageSize = 4096

// Fault is a memory access violation: the simulated SIGSEGV.
type Fault struct {
	Addr  uint64
	Write bool
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("segmentation fault: invalid %s at address 0x%x", kind, f.Addr)
}

// Memory is a sparse paged address space with demand-paged backing: Map
// records that a page exists (a nil entry) but the 4 KiB backing store is
// materialized only on the first write, exactly as a kernel would serve an
// anonymous mapping from the shared zero page until a write faults. Reads
// of an untouched mapped page come from one immutable zero page, so the
// observable bytes are identical to eager zero-filling while mapping an
// 8 MiB stack costs 2048 map inserts instead of 8 MiB of allocate-and-zero
// per machine — the dominant construction cost of the native-model engines.
type Memory struct {
	pages map[uint64][]byte
}

// zeroPage backs reads of mapped-but-never-written pages. It must never be
// handed out on a write path.
var zeroPage [PageSize]byte

// New returns an empty address space (everything unmapped; address 0 traps).
func New() *Memory {
	return &Memory{pages: make(map[uint64][]byte, 64)}
}

// Map makes [addr, addr+size) accessible, zero-filled. Partial pages round
// out to full pages, as mmap would. Backing is allocated lazily on first
// write.
func (m *Memory) Map(addr, size uint64) {
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for p := first; p <= last; p++ {
		if _, ok := m.pages[p]; !ok {
			m.pages[p] = nil
		}
	}
}

// Unmap removes pages fully covered by [addr, addr+size).
func (m *Memory) Unmap(addr, size uint64) {
	first := (addr + PageSize - 1) / PageSize
	last := (addr + size) / PageSize
	for p := first; p < last; p++ {
		delete(m.pages, p)
	}
}

// Mapped reports whether every byte of [addr, addr+size) is accessible.
func (m *Memory) Mapped(addr uint64, size int64) bool {
	if size <= 0 {
		size = 1
	}
	first := addr / PageSize
	last := (addr + uint64(size) - 1) / PageSize
	for p := first; p <= last; p++ {
		if _, ok := m.pages[p]; !ok {
			return false
		}
	}
	return true
}

// rdPage returns a readable view of the page backing addr: the real backing
// when the page has been written, the shared zero page when it is mapped but
// untouched, nil when unmapped.
func (m *Memory) rdPage(addr uint64) []byte {
	pg, ok := m.pages[addr/PageSize]
	if !ok {
		return nil
	}
	if pg == nil {
		return zeroPage[:]
	}
	return pg
}

// wrPage returns the writable backing of the page at addr, materializing it
// on first write; nil when unmapped.
func (m *Memory) wrPage(addr uint64) []byte {
	p := addr / PageSize
	pg, ok := m.pages[p]
	if !ok {
		return nil
	}
	if pg == nil {
		pg = make([]byte, PageSize)
		m.pages[p] = pg
	}
	return pg
}

// Load reads size bytes (1, 2, 4, or 8) little-endian at addr. The value is
// returned zero-extended; callers sign-extend per their type.
func (m *Memory) Load(addr uint64, size int64) (uint64, *Fault) {
	pg := m.rdPage(addr)
	if pg == nil {
		return 0, &Fault{Addr: addr}
	}
	off := addr % PageSize
	if off+uint64(size) <= PageSize {
		var v uint64
		for i := int64(0); i < size; i++ {
			v |= uint64(pg[off+uint64(i)]) << (8 * uint(i))
		}
		return v, nil
	}
	// Access straddles a page boundary.
	var v uint64
	for i := int64(0); i < size; i++ {
		b, f := m.LoadByte(addr + uint64(i))
		if f != nil {
			return 0, f
		}
		v |= uint64(b) << (8 * uint(i))
	}
	return v, nil
}

// Store writes size bytes little-endian at addr.
func (m *Memory) Store(addr uint64, size int64, v uint64) *Fault {
	pg := m.wrPage(addr)
	if pg == nil {
		return &Fault{Addr: addr, Write: true}
	}
	off := addr % PageSize
	if off+uint64(size) <= PageSize {
		for i := int64(0); i < size; i++ {
			pg[off+uint64(i)] = byte(v >> (8 * uint(i)))
		}
		return nil
	}
	for i := int64(0); i < size; i++ {
		if f := m.StoreByte(addr+uint64(i), byte(v>>(8*uint(i)))); f != nil {
			return f
		}
	}
	return nil
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint64) (byte, *Fault) {
	pg := m.rdPage(addr)
	if pg == nil {
		return 0, &Fault{Addr: addr}
	}
	return pg[addr%PageSize], nil
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint64, b byte) *Fault {
	pg := m.wrPage(addr)
	if pg == nil {
		return &Fault{Addr: addr, Write: true}
	}
	pg[addr%PageSize] = b
	return nil
}

// ReadBytes copies n bytes out of memory (for I/O and diagnostics).
func (m *Memory) ReadBytes(addr uint64, n int64) ([]byte, *Fault) {
	out := make([]byte, n)
	for i := int64(0); i < n; i++ {
		b, f := m.LoadByte(addr + uint64(i))
		if f != nil {
			return nil, f
		}
		out[i] = b
	}
	return out, nil
}

// WriteBytes copies a byte slice into memory.
func (m *Memory) WriteBytes(addr uint64, data []byte) *Fault {
	for i, b := range data {
		if f := m.StoreByte(addr+uint64(i), b); f != nil {
			return f
		}
	}
	return nil
}

// CString reads a NUL-terminated string (bounded by max).
func (m *Memory) CString(addr uint64, max int64) (string, *Fault) {
	var buf []byte
	for i := int64(0); i < max; i++ {
		b, f := m.LoadByte(addr + uint64(i))
		if f != nil {
			return "", f
		}
		if b == 0 {
			break
		}
		buf = append(buf, b)
	}
	return string(buf), nil
}

// PageCount reports the number of mapped pages (tests, stats).
func (m *Memory) PageCount() int { return len(m.pages) }
