package memcheck

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nativemem"
	"repro/internal/nativevm"
)

func newTool() (*Tool, nativevm.Allocator) {
	t := New()
	alloc := t.NewAllocator(nativemem.New())
	return t, alloc
}

func TestHeapBounds(t *testing.T) {
	tool, alloc := newTool()
	addr := alloc.Malloc(24)
	if be := tool.Load(addr, 8); be != nil {
		t.Errorf("in-bounds flagged: %v", be)
	}
	if be := tool.Load(addr+23, 1); be != nil {
		t.Errorf("last byte flagged: %v", be)
	}
	if be := tool.Load(addr+24, 1); be == nil || be.Kind != core.OutOfBounds {
		t.Errorf("heap overflow: %v", be)
	}
	if be := tool.Store(addr-1, 1); be == nil {
		t.Error("heap underflow (redzone) missed")
	}
}

func TestUseAfterFreeUntilReuse(t *testing.T) {
	tool, alloc := newTool()
	addr := alloc.Malloc(32)
	if err := alloc.Free(addr); err != nil {
		t.Fatal(err)
	}
	if be := tool.Load(addr, 4); be == nil || be.Kind != core.UseAfterFree {
		t.Errorf("freed read: %v", be)
	}
	// Re-allocation of the same block makes the stale pointer "valid".
	again := alloc.Malloc(32)
	if again != addr {
		t.Skipf("allocator did not reuse the block (%#x vs %#x)", again, addr)
	}
	if be := tool.Load(addr, 4); be != nil {
		t.Errorf("after reuse, the stale pointer goes dark (P3): %v", be)
	}
}

func TestDoubleAndInvalidFree(t *testing.T) {
	tool, alloc := newTool()
	addr := alloc.Malloc(16)
	alloc.Free(addr)
	if err := alloc.Free(addr); err == nil {
		t.Error("double free missed")
	} else if be, ok := err.(*core.BugError); !ok || be.Kind != core.DoubleFree {
		t.Errorf("double free kind: %v", err)
	}
	if err := alloc.Free(0xabcdef); err == nil {
		t.Error("invalid free missed")
	}
	_ = tool
}

func TestStackAndGlobalsAreBlind(t *testing.T) {
	tool, _ := newTool()
	// Stack and global addresses never fire, whatever their contents —
	// the structural blind spot the paper discusses.
	if be := tool.Load(nativevm.StackTop-100, 8); be != nil {
		t.Errorf("stack access flagged: %v", be)
	}
	if be := tool.Store(nativevm.GlobalBase+4, 4); be != nil {
		t.Errorf("global access flagged: %v", be)
	}
}

func TestLeakReporting(t *testing.T) {
	tool, alloc := newTool()
	a := alloc.Malloc(10)
	b := alloc.Malloc(20)
	alloc.Free(a)
	_ = b
	leaks := tool.Leaks()
	if len(leaks) != 1 || leaks[0].ObjSize != 20 {
		t.Errorf("leaks = %v", leaks)
	}
}

func TestPerInstrIsCheap(t *testing.T) {
	tool, _ := newTool()
	// Sanity: the per-instruction shadow work must terminate and mutate
	// state deterministically.
	before := tool.regShadow
	for i := 0; i < 1000; i++ {
		tool.PerInstr(i & 15)
	}
	if tool.regShadow == before {
		t.Error("register shadow never changed")
	}
}
