// Package memcheck models Valgrind's memcheck: dynamic binary
// instrumentation that shadows *heap* memory with per-byte addressability
// (A) bits. Its replacement allocator pads blocks with redzones and tracks
// frees, so it reliably finds heap out-of-bounds accesses, use-after-free
// (until the block is re-allocated), double/invalid frees, and leaks.
//
// Its blind spots are structural, exactly as the paper describes (§2.2):
// the stack and the data segment are simply "addressable", so stack and
// global overflows that stay within mapped memory are invisible, as are
// argv/envp overreads and variadic-argument misuse. (Real memcheck also
// tracks definedness V-bits, which can *sometimes* flag a stack overread
// indirectly; the paper found that unreliable, and this model omits it.)
package memcheck

import (
	"sort"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/nativemem"
	"repro/internal/nativevm"
)

const heapRedzone = 16

// Tool is a memcheck instance. Every access pays for shadow lookups (A-bits
// for addressability plus V-bits for definedness, as the real tool
// maintains); only heap A-bits can actually fire, but the bookkeeping cost
// is universal — that cost is Valgrind's signature slowdown.
type Tool struct {
	abits map[uint64][]byte // page -> 1 = addressable (heap region only)
	vbits map[uint64][]byte // page -> definedness, maintained everywhere
	live  map[uint64]int64
	freed map[uint64]int64
	inner nativevm.Allocator

	heapLo, heapHi uint64

	// regShadow models the per-operation V-bit propagation Valgrind's
	// translated code performs for every IR operation: each instruction
	// combines and rewrites register definedness state.
	regShadow [64]uint64
	shadowIdx int

	// fuel, when set by the machine, charges data-proportional shadow
	// bookkeeping (A/V-bit range updates) against the run's step budget so
	// instrumented bulk operations honor the execution governor.
	fuel func(n int64)

	// stack, when set by the machine, captures the guest backtrace at the
	// current instruction; allocStacks/freeStacks remember malloc and free
	// sites per block (Valgrind's execontexts), so use-after-free and
	// double-free reports print "Address ... was alloc'd / free'd at".
	stack       func() diag.Stack
	allocStacks map[uint64]diag.Stack
	freeStacks  map[uint64]diag.Stack
}

// SetFuel installs the machine's fuel account (nativevm wires this up).
func (t *Tool) SetFuel(f func(n int64)) { t.fuel = f }

// SetStackSource installs the machine's shadow call stack (nativevm wires
// this up, like SetFuel).
func (t *Tool) SetStackSource(f func() diag.Stack) { t.stack = f }

func (t *Tool) capture() diag.Stack {
	if t.stack != nil {
		return t.stack()
	}
	return diag.Stack{}
}

func (t *Tool) charge(n int64) {
	if t.fuel != nil && n > 0 {
		t.fuel(n)
	}
}

// PerInstr is installed as the machine's per-instruction hook: it performs
// the register-shadow combination work Valgrind's generated code executes
// for every original instruction. The work is real (data-dependent state
// updates), which is what makes memcheck an order of magnitude slower than
// compile-time instrumentation.
func (t *Tool) PerInstr(op int) {
	// Valgrind's translated code executes roughly an order of magnitude
	// more host operations per guest instruction than the original
	// (shadow loads, V-bit combination, origin tracking). The loop below
	// performs that bookkeeping for the definedness of the instruction's
	// inputs and output; the iteration count is calibrated so the
	// tool-overhead ordering matches the published measurements.
	i := t.shadowIdx
	for k := 0; k < 10; k++ {
		a := t.regShadow[(i+k)&63]
		b := t.regShadow[(i+k+17)&63]
		v := a&b | a>>1 | b<<1 | uint64(op)
		t.regShadow[(i+k+5)&63] = v
		t.regShadow[(i+k+29)&63] ^= v >> 3
	}
	t.shadowIdx = i + 1
}

// New builds a memcheck tool.
func New() *Tool {
	return &Tool{
		abits:       map[uint64][]byte{},
		vbits:       map[uint64][]byte{},
		live:        map[uint64]int64{},
		freed:       map[uint64]int64{},
		allocStacks: map[uint64]diag.Stack{},
		freeStacks:  map[uint64]diag.Stack{},
		heapLo:      nativevm.HeapBase,
		heapHi:      nativevm.HeapBase,
	}
}

func (t *Tool) aState(addr uint64) byte {
	pg, ok := t.abits[addr/nativemem.PageSize]
	if !ok {
		return 0
	}
	return pg[addr%nativemem.PageSize]
}

func (t *Tool) setA(addr uint64, size int64, v byte) {
	t.charge(size / 8)
	for i := int64(0); i < size; i++ {
		a := addr + uint64(i)
		pg, ok := t.abits[a/nativemem.PageSize]
		if !ok {
			pg = make([]byte, nativemem.PageSize)
			t.abits[a/nativemem.PageSize] = pg
		}
		pg[a%nativemem.PageSize] = v
	}
}

// touchV pays the V-bit cost: the real tool propagates definedness for
// every value in the program. Stores mark bytes defined; loads consult the
// bits (definedness violations are only reported at uses that affect
// observable behaviour, which this model does not flag — the paper found
// that signal unreliable — but the shadow traffic is real).
func (t *Tool) touchV(addr uint64, size int64, write bool) {
	t.charge(size / 8)
	pgIdx := addr / nativemem.PageSize
	pg, ok := t.vbits[pgIdx]
	if !ok {
		pg = make([]byte, nativemem.PageSize)
		t.vbits[pgIdx] = pg
	}
	off := addr % nativemem.PageSize
	if off+uint64(size) <= nativemem.PageSize {
		if write {
			for i := int64(0); i < size; i++ {
				pg[off+uint64(i)] = 1
			}
		} else {
			s := byte(1)
			for i := int64(0); i < size; i++ {
				s &= pg[off+uint64(i)]
			}
			_ = s
		}
		return
	}
	for i := int64(0); i < size; i++ {
		a := addr + uint64(i)
		pg2, ok := t.vbits[a/nativemem.PageSize]
		if !ok {
			pg2 = make([]byte, nativemem.PageSize)
			t.vbits[a/nativemem.PageSize] = pg2
		}
		if write {
			pg2[a%nativemem.PageSize] = 1
		}
	}
}

func (t *Tool) check(addr uint64, size int64, acc core.AccessKind) *core.BugError {
	// Only the heap segment's A-bits can fire. Everything else (stack,
	// globals, argv) is addressable by construction — the tool's
	// structural blind spot.
	if addr < t.heapLo || addr >= t.heapHi {
		return nil
	}
	for i := int64(0); i < size; i++ {
		if t.aState(addr+uint64(i)) == 0 {
			be := &core.BugError{Kind: core.OutOfBounds, Access: acc, Size: size, Mem: core.HeapMem,
				Func: "memcheck", AccessStack: t.capture()}
			// If this byte belongs to a freed (not yet reused) block, the
			// report is a use-after-free and blames that block's alloc and
			// free sites (Valgrind's "was alloc'd / free'd at" sections).
			bad := addr + uint64(i)
			for fa, fs := range t.freed {
				if bad >= fa && bad < fa+uint64(fs) {
					be.Kind = core.UseAfterFree
					be.AllocStack = t.allocStacks[fa]
					be.FreeStack = t.freeStacks[fa]
					break
				}
			}
			if be.Kind == core.OutOfBounds {
				// Blame the adjacent live block when the access lands in a
				// redzone next to it.
				for base, bs := range t.live {
					if bad+heapRedzone >= base && bad < base+uint64(bs)+heapRedzone {
						be.AllocStack = t.allocStacks[base]
						break
					}
				}
			}
			return be
		}
	}
	return nil
}

// Load implements nativevm.Checker.
func (t *Tool) Load(addr uint64, size int64) *core.BugError {
	t.touchV(addr, size, false)
	return t.check(addr, size, core.Read)
}

// Store implements nativevm.Checker.
func (t *Tool) Store(addr uint64, size int64) *core.BugError {
	t.touchV(addr, size, true)
	return t.check(addr, size, core.Write)
}

// StackAlloc is a no-op: the stack is addressable wholesale.
func (t *Tool) StackAlloc(addr uint64, size int64) {}

// StackFree is a no-op.
func (t *Tool) StackFree(lo, hi uint64) {}

// GlobalAlloc is a no-op: the data segment is addressable wholesale.
func (t *Tool) GlobalAlloc(addr uint64, size int64) {}

// NewAllocator wraps the default heap with redzones and A-bit bookkeeping.
func (t *Tool) NewAllocator(mem *nativemem.Memory) nativevm.Allocator {
	t.inner = nativevm.NewFreeListAlloc(mem)
	return (*mcAlloc)(t)
}

type mcAlloc Tool

func (a *mcAlloc) tool() *Tool { return (*Tool)(a) }

func (a *mcAlloc) Malloc(size int64) uint64 {
	t := a.tool()
	raw := t.inner.Malloc(size + 2*heapRedzone)
	if raw == 0 {
		return 0
	}
	addr := raw + heapRedzone
	t.setA(addr, size, 1)
	t.live[addr] = size
	t.allocStacks[addr] = t.capture()
	delete(t.freed, addr) // block re-allocated: stale pointers go dark
	delete(t.freeStacks, addr)
	if end := addr + uint64(size); end > t.heapHi {
		t.heapHi = end + nativemem.PageSize
	}
	return addr
}

func (a *mcAlloc) Free(addr uint64) error {
	t := a.tool()
	size, ok := t.live[addr]
	if !ok {
		if _, wasFreed := t.freed[addr]; wasFreed {
			return &core.BugError{Kind: core.DoubleFree, Access: core.Free, Mem: core.HeapMem, Func: "memcheck",
				AccessStack: t.capture(), AllocStack: t.allocStacks[addr], FreeStack: t.freeStacks[addr]}
		}
		return &core.BugError{Kind: core.InvalidFree, Access: core.Free, Func: "memcheck", AccessStack: t.capture()}
	}
	delete(t.live, addr)
	t.freed[addr] = size
	t.freeStacks[addr] = t.capture()
	t.setA(addr, size, 0)
	return t.inner.Free(addr - heapRedzone)
}

func (a *mcAlloc) SizeOf(addr uint64) (int64, bool) {
	s, ok := a.tool().live[addr]
	return s, ok
}

// Leaks reports blocks still live at exit (memcheck's --leak-check), each
// with the backtrace of its allocation site. Blocks are reported in address
// order so output is deterministic run to run.
func (t *Tool) Leaks() []*core.BugError {
	addrs := make([]uint64, 0, len(t.live))
	for addr := range t.live {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var out []*core.BugError
	for _, addr := range addrs {
		out = append(out, &core.BugError{Kind: core.MemoryLeak, ObjSize: t.live[addr], Mem: core.HeapMem,
			Func: "memcheck", AllocStack: t.allocStacks[addr]})
	}
	return out
}
