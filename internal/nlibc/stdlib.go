package nlibc

import (
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/nativevm"
)

func f32bitsOf(f float64) uint32 { return math.Float32bits(float32(f)) }
func f64bitsOf(f float64) uint64 { return math.Float64bits(f) }

func addStdlib(t map[string]nativevm.LibFunc, checked bool) {
	t["malloc"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return nativevm.IntVal(int64(m.Alloc.Malloc(c.Args[0].I))), nil
	}
	t["calloc"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		cnt, sz := c.Args[0].I, c.Args[1].I
		// C11 7.22.3.2: if cnt*sz overflows, calloc must fail — wrapping to
		// a small allocation is the classic exploitable bug. The negative
		// sentinel still reaches the allocator gate so the denied attempt is
		// counted (the fault plan's coordinate system is the call sequence).
		if cnt < 0 || sz < 0 || (sz != 0 && cnt > math.MaxInt64/sz) {
			m.Alloc.Malloc(-1)
			return nativevm.IntVal(0), nil
		}
		n := cnt * sz
		addr := m.Alloc.Malloc(n)
		if addr == 0 {
			return nativevm.IntVal(0), nil
		}
		for i := int64(0); i < n; i++ {
			m.Mem.StoreByte(addr+uint64(i), 0)
		}
		return nativevm.IntVal(int64(addr)), nil
	}
	// realloc follows glibc (DESIGN.md §10): realloc(NULL,n) == malloc(n);
	// realloc(p,0) frees p and returns NULL; a failed grow returns NULL and
	// leaves the old block untouched (C11 7.22.3.5).
	t["realloc"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		old := uint64(c.Args[0].I)
		size := c.Args[1].I
		if old == 0 {
			return nativevm.IntVal(int64(m.Alloc.Malloc(size))), nil
		}
		oldSize, ok := m.Alloc.SizeOf(old)
		if !ok {
			return nativevm.Value{}, &nativevm.GlibcAbort{What: "realloc(): invalid pointer", Addr: old}
		}
		if size == 0 {
			m.RetireHeapType(old)
			if err := m.Alloc.Free(old); err != nil {
				return nativevm.Value{}, err
			}
			return nativevm.IntVal(0), nil
		}
		addr := m.Alloc.Malloc(size)
		if addr == 0 {
			return nativevm.IntVal(0), nil // old block stays live and valid
		}
		n := oldSize
		if size < n {
			n = size
		}
		data, f := m.Mem.ReadBytes(old, n)
		if f != nil {
			return nativevm.Value{}, f
		}
		m.Mem.WriteBytes(addr, data)
		m.RetireHeapType(old)
		if err := m.Alloc.Free(old); err != nil {
			return nativevm.Value{}, err
		}
		return nativevm.IntVal(int64(addr)), nil
	}
	t["free"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		addr := uint64(c.Args[0].I)
		if addr == 0 {
			return nativevm.Value{}, nil
		}
		m.RetireHeapType(addr)
		if err := m.Alloc.Free(addr); err != nil {
			return nativevm.Value{}, err
		}
		return nativevm.Value{}, nil
	}
	t["exit"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return nativevm.Value{}, exitErr(int(int32(c.Args[0].I)))
	}
	t["abort"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return nativevm.Value{}, exitErr(134)
	}

	parseIntAt := func(m *nativevm.Machine, addr uint64) int64 {
		s, _ := m.Mem.CString(addr, 128)
		s = strings.TrimSpace(s)
		end := 0
		if end < len(s) && (s[end] == '-' || s[end] == '+') {
			end++
		}
		for end < len(s) && s[end] >= '0' && s[end] <= '9' {
			end++
		}
		v, _ := strconv.ParseInt(s[:end], 10, 64)
		return v
	}
	t["atoi"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return nativevm.IntVal(int64(int32(parseIntAt(m, uint64(c.Args[0].I))))), nil
	}
	t["atol"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return nativevm.IntVal(parseIntAt(m, uint64(c.Args[0].I))), nil
	}
	parseFloatAt := func(m *nativevm.Machine, addr uint64) float64 {
		s, _ := m.Mem.CString(addr, 128)
		s = strings.TrimSpace(s)
		for len(s) > 0 {
			if v, err := strconv.ParseFloat(s, 64); err == nil {
				return v
			}
			s = s[:len(s)-1]
		}
		return 0
	}
	t["atof"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return nativevm.FloatVal(parseFloatAt(m, uint64(c.Args[0].I))), nil
	}
	t["__ss_atof"] = t["atof"]
	t["strtod"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		// endptr support: advance over the float prefix.
		addr := uint64(c.Args[0].I)
		endp := uint64(c.Args[1].I)
		s, _ := m.Mem.CString(addr, 128)
		trimmed := strings.TrimLeft(s, " \t\n")
		skip := len(s) - len(trimmed)
		n := floatPrefixLen(trimmed)
		if endp != 0 {
			m.Mem.Store(endp, 8, uint64(addr)+uint64(skip+n))
		}
		v, _ := strconv.ParseFloat(trimmed[:n], 64)
		return nativevm.FloatVal(v), nil
	}
	t["strtol"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		addr := uint64(c.Args[0].I)
		endp := uint64(c.Args[1].I)
		base := int(c.Args[2].I)
		s, _ := m.Mem.CString(addr, 128)
		trimmed := strings.TrimLeft(s, " \t\n")
		skip := len(s) - len(trimmed)
		v, n := parsePrefixInt(trimmed, base)
		if endp != 0 {
			m.Mem.Store(endp, 8, uint64(addr)+uint64(skip+n))
		}
		return nativevm.IntVal(v), nil
	}
	t["abs"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		v := int32(c.Args[0].I)
		if v < 0 {
			v = -v
		}
		return nativevm.IntVal(int64(v)), nil
	}
	t["labs"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		v := c.Args[0].I
		if v < 0 {
			v = -v
		}
		return nativevm.IntVal(v), nil
	}
	t["rand"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		m.RandState = m.RandState*6364136223846793005 + 1442695040888963407
		return nativevm.IntVal(int64((m.RandState >> 33) & 0x7fffffff)), nil
	}
	t["srand"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		m.RandState = uint64(c.Args[0].I)
		return nativevm.Value{}, nil
	}
	t["getenv"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		name, f := m.Mem.CString(uint64(c.Args[0].I), 4096)
		if f != nil {
			return nativevm.Value{}, f
		}
		envp := m.EnvpAddr()
		if envp == 0 {
			return nativevm.IntVal(0), nil
		}
		for i := uint64(0); ; i++ {
			slot, f := m.Mem.Load(envp+8*i, 8)
			if f != nil || slot == 0 {
				return nativevm.IntVal(0), nil
			}
			kv, f := m.Mem.CString(slot, 8192)
			if f != nil {
				return nativevm.Value{}, f
			}
			for j := 0; j < len(kv); j++ {
				if kv[j] == '=' {
					if kv[:j] == name {
						return nativevm.IntVal(int64(slot) + int64(j) + 1), nil
					}
					break
				}
			}
		}
	}
	t["__ss_getenv"] = t["getenv"]
	t["clock"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return nativevm.IntVal(time.Since(processStart).Microseconds()), nil
	}

	t["qsort"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		base := uint64(c.Args[0].I)
		nmemb, size := c.Args[1].I, c.Args[2].I
		cmp := uint64(c.Args[3].I)
		// Precompiled qsort: moves bytes with raw accesses, calls back into
		// program code for comparisons.
		swap := func(i, j int64) {
			for k := int64(0); k < size; k++ {
				a, _ := m.Mem.LoadByte(base + uint64(i*size+k))
				b, _ := m.Mem.LoadByte(base + uint64(j*size+k))
				m.Mem.StoreByte(base+uint64(i*size+k), b)
				m.Mem.StoreByte(base+uint64(j*size+k), a)
			}
		}
		call := func(i, j int64) (int64, error) {
			r, err := m.CallAddr(cmp, []nativevm.Value{
				nativevm.IntVal(int64(base + uint64(i*size))),
				nativevm.IntVal(int64(base + uint64(j*size))),
			})
			return r.I, err
		}
		var rec func(lo, hi int64) error
		rec = func(lo, hi int64) error {
			if hi-lo < 1 {
				return nil
			}
			p := hi
			i := lo - 1
			for j := lo; j < hi; j++ {
				r, err := call(j, p)
				if err != nil {
					return err
				}
				if int32(r) <= 0 {
					i++
					swap(i, j)
				}
			}
			i++
			swap(i, hi)
			if err := rec(lo, i-1); err != nil {
				return err
			}
			return rec(i+1, hi)
		}
		if err := rec(0, nmemb-1); err != nil {
			return nativevm.Value{}, err
		}
		return nativevm.Value{}, nil
	}
	t["bsearch"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		key := uint64(c.Args[0].I)
		base := uint64(c.Args[1].I)
		nmemb, size := c.Args[2].I, c.Args[3].I
		cmp := uint64(c.Args[4].I)
		lo, hi := int64(0), nmemb-1
		for lo <= hi {
			mid := lo + (hi-lo)/2
			el := base + uint64(mid*size)
			r, err := m.CallAddr(cmp, []nativevm.Value{nativevm.IntVal(int64(key)), nativevm.IntVal(int64(el))})
			if err != nil {
				return nativevm.Value{}, err
			}
			switch {
			case int32(r.I) == 0:
				return nativevm.IntVal(int64(el)), nil
			case int32(r.I) < 0:
				hi = mid - 1
			default:
				lo = mid + 1
			}
		}
		return nativevm.IntVal(0), nil
	}

	// Variadic support for user-defined variadic functions compiled with
	// the bundled stdarg.h. get_vararg hands out raw addresses into the va
	// area; indexing past the end simply points further into the stack.
	t["__ss_count_varargs"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		if c.Frame == nil {
			return nativevm.IntVal(0), nil
		}
		return nativevm.IntVal(int64(c.Frame.VaCount)), nil
	}
	t["__ss_get_vararg"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		if c.Frame == nil {
			return nativevm.IntVal(0), nil
		}
		// A raw address into the caller's variadic area; indexing past the
		// end simply points further into the stack (no machine-level count).
		return nativevm.IntVal(int64(c.Frame.VaBase + uint64(8*c.Args[0].I))), nil
	}
	t["__ss_ftoa"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		buf := uint64(c.Args[0].I)
		v := c.Args[1].F
		prec := int(c.Args[2].I)
		kind := byte(c.Args[3].I)
		if kind != 'f' && kind != 'e' && kind != 'g' {
			kind = 'f'
		}
		s := strconv.FormatFloat(v, kind, prec, 64)
		if f := m.Mem.WriteBytes(buf, append([]byte(s), 0)); f != nil {
			return nativevm.Value{}, f
		}
		return nativevm.IntVal(int64(len(s))), nil
	}
	_ = checked
}

var processStart = time.Now()

func floatPrefixLen(s string) int {
	n := 0
	if n < len(s) && (s[n] == '-' || s[n] == '+') {
		n++
	}
	for n < len(s) && s[n] >= '0' && s[n] <= '9' {
		n++
	}
	if n < len(s) && s[n] == '.' {
		n++
		for n < len(s) && s[n] >= '0' && s[n] <= '9' {
			n++
		}
	}
	if n < len(s) && (s[n] == 'e' || s[n] == 'E') {
		k := n + 1
		if k < len(s) && (s[k] == '-' || s[k] == '+') {
			k++
		}
		if k < len(s) && s[k] >= '0' && s[k] <= '9' {
			for k < len(s) && s[k] >= '0' && s[k] <= '9' {
				k++
			}
			n = k
		}
	}
	return n
}

func parsePrefixInt(s string, base int) (int64, int) {
	n := 0
	neg := false
	if n < len(s) && (s[n] == '-' || s[n] == '+') {
		neg = s[n] == '-'
		n++
	}
	if (base == 0 || base == 16) && n+1 < len(s) && s[n] == '0' && (s[n+1] == 'x' || s[n+1] == 'X') {
		base = 16
		n += 2
	} else if base == 0 && n < len(s) && s[n] == '0' {
		base = 8
	} else if base == 0 {
		base = 10
	}
	v := int64(0)
	for n < len(s) {
		var d int
		c := s[n]
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case c >= 'a' && c <= 'z':
			d = int(c-'a') + 10
		case c >= 'A' && c <= 'Z':
			d = int(c-'A') + 10
		default:
			d = 99
		}
		if d >= base {
			break
		}
		v = v*int64(base) + int64(d)
		n++
	}
	if neg {
		v = -v
	}
	return v, n
}

func addCtype(t map[string]nativevm.LibFunc) {
	pred := func(f func(byte) bool) nativevm.LibFunc {
		return func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
			if f(byte(c.Args[0].I)) {
				return nativevm.IntVal(1), nil
			}
			return nativevm.IntVal(0), nil
		}
	}
	isDig := func(b byte) bool { return b >= '0' && b <= '9' }
	isUp := func(b byte) bool { return b >= 'A' && b <= 'Z' }
	isLow := func(b byte) bool { return b >= 'a' && b <= 'z' }
	isAl := func(b byte) bool { return isUp(b) || isLow(b) }
	t["isdigit"] = pred(isDig)
	t["isalpha"] = pred(isAl)
	t["isalnum"] = pred(func(b byte) bool { return isAl(b) || isDig(b) })
	t["isspace"] = pred(func(b byte) bool {
		return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\v' || b == '\f'
	})
	t["isupper"] = pred(isUp)
	t["islower"] = pred(isLow)
	t["isxdigit"] = pred(func(b byte) bool { return isDig(b) || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F' })
	t["ispunct"] = pred(func(b byte) bool { return b > ' ' && b < 127 && !isAl(b) && !isDig(b) })
	t["isprint"] = pred(func(b byte) bool { return b >= ' ' && b < 127 })
	t["toupper"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		b := byte(c.Args[0].I)
		if isLow(b) {
			return nativevm.IntVal(int64(b - 'a' + 'A')), nil
		}
		return c.Args[0], nil
	}
	t["tolower"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		b := byte(c.Args[0].I)
		if isUp(b) {
			return nativevm.IntVal(int64(b - 'A' + 'a')), nil
		}
		return c.Args[0], nil
	}
}

func addMath(t map[string]nativevm.LibFunc) {
	m1 := func(f func(float64) float64) nativevm.LibFunc {
		return func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
			return nativevm.FloatVal(f(c.Args[0].F)), nil
		}
	}
	m2 := func(f func(a, b float64) float64) nativevm.LibFunc {
		return func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
			return nativevm.FloatVal(f(c.Args[0].F, c.Args[1].F)), nil
		}
	}
	t["sin"] = m1(math.Sin)
	t["cos"] = m1(math.Cos)
	t["tan"] = m1(math.Tan)
	t["asin"] = m1(math.Asin)
	t["acos"] = m1(math.Acos)
	t["atan"] = m1(math.Atan)
	t["exp"] = m1(math.Exp)
	t["log"] = m1(math.Log)
	t["log10"] = m1(math.Log10)
	t["sqrt"] = m1(math.Sqrt)
	t["floor"] = m1(math.Floor)
	t["ceil"] = m1(math.Ceil)
	t["fabs"] = m1(math.Abs)
	t["atan2"] = m2(math.Atan2)
	t["pow"] = m2(math.Pow)
	t["fmod"] = m2(math.Mod)
}
