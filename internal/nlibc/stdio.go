package nlibc

import (
	"strconv"
	"strings"

	"repro/internal/nativevm"
)

func addStdio(t map[string]nativevm.LibFunc, checked bool) {
	getchar := func(m *nativevm.Machine) int64 {
		if m.Ungot != -2 {
			c := m.Ungot
			m.Ungot = -2
			return int64(c)
		}
		b, err := m.Stdin.ReadByte()
		if err != nil {
			return -1
		}
		return int64(b)
	}

	t["putchar"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		m.Stdout.WriteByte(byte(c.Args[0].I))
		return nativevm.IntVal(c.Args[0].I & 0xff), nil
	}
	t["__ss_putchar"] = t["putchar"]
	t["getchar"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return nativevm.IntVal(getchar(m)), nil
	}
	t["__ss_getchar"] = t["getchar"]
	t["fgetc"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return nativevm.IntVal(getchar(m)), nil
	}
	t["ungetc"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		// C11 7.21.7.10p3: ungetc(EOF, f) is a no-op that returns EOF.
		// Storing it would make the next getchar spuriously report
		// end-of-stream (Ungot == -1 is indistinguishable from EOF).
		ch := int(c.Args[0].I)
		if ch == -1 {
			return nativevm.IntVal(-1), nil
		}
		m.Ungot = ch & 0xff
		return nativevm.IntVal(int64(ch & 0xff)), nil
	}
	t["puts"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		s := uint64(c.Args[0].I)
		n, err := wordStrlen(m, s)
		if err != nil {
			return nativevm.Value{}, err
		}
		data, f := m.Mem.ReadBytes(s, n)
		if f != nil {
			return nativevm.Value{}, f
		}
		m.Stdout.Write(data)
		m.Stdout.WriteByte('\n')
		return nativevm.IntVal(0), nil
	}
	t["fputc"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		m.Stdout.WriteByte(byte(c.Args[0].I))
		return c.Args[0], nil
	}
	t["fputs"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		s := uint64(c.Args[0].I)
		n, err := wordStrlen(m, s)
		if err != nil {
			return nativevm.Value{}, err
		}
		data, f := m.Mem.ReadBytes(s, n)
		if f != nil {
			return nativevm.Value{}, f
		}
		m.Stdout.Write(data)
		return nativevm.IntVal(0), nil
	}
	t["gets"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		s := uint64(c.Args[0].I)
		i := uint64(0)
		for {
			ch := getchar(m)
			if ch == -1 && i == 0 {
				return nativevm.IntVal(0), nil
			}
			if ch == -1 || ch == '\n' {
				break
			}
			if err := a.storeByte(s+i, byte(ch)); err != nil {
				return nativevm.Value{}, err
			}
			i++
		}
		if err := a.storeByte(s+i, 0); err != nil {
			return nativevm.Value{}, err
		}
		return c.Args[0], nil
	}
	t["fgets"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		s, size := uint64(c.Args[0].I), c.Args[1].I
		if size <= 0 {
			return nativevm.IntVal(0), nil
		}
		i := int64(0)
		for i < size-1 {
			ch := getchar(m)
			if ch == -1 {
				break
			}
			if err := a.storeByte(s+uint64(i), byte(ch)); err != nil {
				return nativevm.Value{}, err
			}
			i++
			if ch == '\n' {
				break
			}
		}
		if i == 0 {
			return nativevm.IntVal(0), nil
		}
		if err := a.storeByte(s+uint64(i), 0); err != nil {
			return nativevm.Value{}, err
		}
		return c.Args[0], nil
	}
	t["fwrite"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		p, size, nmemb := uint64(c.Args[0].I), c.Args[1].I, c.Args[2].I
		data, f := m.Mem.ReadBytes(p, size*nmemb)
		if f != nil {
			return nativevm.Value{}, f
		}
		m.Stdout.Write(data)
		return nativevm.IntVal(nmemb), nil
	}
	t["__ss_fwrite"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		p, n := uint64(c.Args[0].I), c.Args[1].I
		data, f := m.Mem.ReadBytes(p, n)
		if f != nil {
			return nativevm.Value{}, f
		}
		m.Stdout.Write(data)
		return nativevm.IntVal(n), nil
	}
	t["fread"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		p, size, nmemb := uint64(c.Args[0].I), c.Args[1].I, c.Args[2].I
		total := size * nmemb
		for i := int64(0); i < total; i++ {
			ch := getchar(m)
			if ch == -1 {
				return nativevm.IntVal(i / size), nil
			}
			if err := a.storeByte(p+uint64(i), byte(ch)); err != nil {
				return nativevm.Value{}, err
			}
		}
		return nativevm.IntVal(nmemb), nil
	}
	t["fopen"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return nativevm.IntVal(0), nil
	}
	t["fclose"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return nativevm.IntVal(0), nil
	}
	t["fflush"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		m.Stdout.Flush()
		return nativevm.IntVal(0), nil
	}

	t["printf"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return printfCommon(m, c, uint64(c.Args[0].I), &nativevm.CallCtx{VaBase: c.VaBase}, nil, -1)
	}
	t["vprintf"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		// va_list built by user code via stdarg.h: a pointer to a
		// struct{counter, args}; approximate by treating it as a va area.
		return printfCommon(m, c, uint64(c.Args[0].I), &nativevm.CallCtx{VaBase: uint64(c.Args[1].I)}, nil, -1)
	}
	t["fprintf"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return printfCommon(m, c, uint64(c.Args[1].I), &nativevm.CallCtx{VaBase: c.VaBase}, nil, -1)
	}
	t["sprintf"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		buf := uint64(c.Args[0].I)
		return printfCommon(m, c, uint64(c.Args[1].I), &nativevm.CallCtx{VaBase: c.VaBase}, &buf, -1)
	}
	t["snprintf"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		buf := uint64(c.Args[0].I)
		return printfCommon(m, c, uint64(c.Args[2].I), &nativevm.CallCtx{VaBase: c.VaBase}, &buf, c.Args[1].I)
	}

	scanfImpl := func(m *nativevm.Machine, fmtAddr uint64, va *vaReader) (nativevm.Value, error) {
		a := mem{m, checked}
		assigned := int64(0)
		fmtStr, f := m.Mem.CString(fmtAddr, 4096)
		if f != nil {
			return nativevm.Value{}, f
		}
		peek := func() int64 {
			ch := getchar(m)
			if ch != -1 {
				m.Ungot = int(ch)
			}
			return ch
		}
		skipSpace := func() {
			for {
				ch := getchar(m)
				if ch == -1 {
					return
				}
				if ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r' {
					m.Ungot = int(ch)
					return
				}
			}
		}
		i := 0
		for i < len(fmtStr) {
			ch := fmtStr[i]
			if ch == ' ' || ch == '\t' || ch == '\n' {
				i++
				continue
			}
			if ch != '%' {
				skipSpace()
				in := getchar(m)
				if in != int64(ch) {
					if in != -1 {
						m.Ungot = int(in)
					}
					return nativevm.IntVal(assigned), nil
				}
				i++
				continue
			}
			i++
			longMod := false
			for i < len(fmtStr) && (fmtStr[i] == 'l' || fmtStr[i] == 'h' || fmtStr[i] == 'z') {
				if fmtStr[i] == 'l' {
					longMod = true
				}
				i++
			}
			if i >= len(fmtStr) {
				break
			}
			conv := fmtStr[i]
			i++
			switch conv {
			case 'd', 'u', 'i':
				skipSpace()
				var sb strings.Builder
				in := getchar(m)
				if in == '-' || in == '+' {
					sb.WriteByte(byte(in))
					in = getchar(m)
				}
				for in >= '0' && in <= '9' {
					sb.WriteByte(byte(in))
					in = getchar(m)
				}
				if in != -1 {
					m.Ungot = int(in)
				}
				v, err := strconv.ParseInt(sb.String(), 10, 64)
				if err != nil {
					return nativevm.IntVal(assigned), nil
				}
				size := int64(4)
				if longMod {
					size = 8
				}
				if err := a.store(uint64(va.nextInt()), size, v); err != nil {
					return nativevm.Value{}, err
				}
				assigned++
			case 'f', 'e', 'g':
				skipSpace()
				var sb strings.Builder
				in := getchar(m)
				for in == '-' || in == '+' || in == '.' || in == 'e' || in == 'E' || in >= '0' && in <= '9' {
					sb.WriteByte(byte(in))
					in = getchar(m)
				}
				if in != -1 {
					m.Ungot = int(in)
				}
				fv, err := strconv.ParseFloat(sb.String(), 64)
				if err != nil {
					return nativevm.IntVal(assigned), nil
				}
				addr := uint64(va.nextInt())
				if longMod {
					if err := a.store(addr, 8, int64(f64bitsOf(fv))); err != nil {
						return nativevm.Value{}, err
					}
				} else {
					if err := a.store(addr, 4, int64(f32bitsOf(fv))); err != nil {
						return nativevm.Value{}, err
					}
				}
				assigned++
			case 's':
				skipSpace()
				out := uint64(va.nextInt())
				k := uint64(0)
				if peek() == -1 {
					if assigned == 0 {
						return nativevm.IntVal(-1), nil
					}
					return nativevm.IntVal(assigned), nil
				}
				for {
					in := getchar(m)
					if in == -1 || in == ' ' || in == '\t' || in == '\n' || in == '\r' {
						if in != -1 {
							m.Ungot = int(in)
						}
						break
					}
					if err := a.storeByte(out+k, byte(in)); err != nil {
						return nativevm.Value{}, err
					}
					k++
				}
				if err := a.storeByte(out+k, 0); err != nil {
					return nativevm.Value{}, err
				}
				assigned++
			case 'c':
				in := getchar(m)
				if in == -1 {
					return nativevm.IntVal(assigned), nil
				}
				if err := a.storeByte(uint64(va.nextInt()), byte(in)); err != nil {
					return nativevm.Value{}, err
				}
				assigned++
			}
		}
		return nativevm.IntVal(assigned), nil
	}
	t["scanf"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return scanfImpl(m, uint64(c.Args[0].I), &vaReader{m: m, addr: c.VaBase})
	}
	t["fscanf"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		return scanfImpl(m, uint64(c.Args[1].I), &vaReader{m: m, addr: c.VaBase})
	}
}

// printfCommon formats to stdout or to a buffer (sprintf family). Writes to
// the destination buffer are libc-internal and unchecked — sprintf overflow
// silently corrupts memory on the native engines (caught only by an ASan
// interceptor, which historically checks just the format's %s pointers).
func printfCommon(m *nativevm.Machine, c *nativevm.CallCtx, fmtAddr uint64, vaCtx *nativevm.CallCtx, buf *uint64, cap int64) (nativevm.Value, error) {
	fmtStr, f := m.Mem.CString(fmtAddr, 1<<16)
	if f != nil {
		return nativevm.Value{}, f
	}
	va := &vaReader{m: m, addr: vaCtx.VaBase}
	var out strings.Builder
	i := 0
	for i < len(fmtStr) {
		ch := fmtStr[i]
		if ch != '%' {
			out.WriteByte(ch)
			i++
			continue
		}
		i++
		start := i
		// flags
		for i < len(fmtStr) && strings.IndexByte("-0+ #", fmtStr[i]) >= 0 {
			i++
		}
		flags := fmtStr[start:i]
		// width
		width := -1
		if i < len(fmtStr) && fmtStr[i] == '*' {
			width = int(va.nextInt())
			i++
		} else {
			w := 0
			has := false
			for i < len(fmtStr) && fmtStr[i] >= '0' && fmtStr[i] <= '9' {
				w = w*10 + int(fmtStr[i]-'0')
				i++
				has = true
			}
			if has {
				width = w
			}
		}
		prec := -1
		if i < len(fmtStr) && fmtStr[i] == '.' {
			i++
			if i < len(fmtStr) && fmtStr[i] == '*' {
				prec = int(va.nextInt())
				i++
			} else {
				prec = 0
				for i < len(fmtStr) && fmtStr[i] >= '0' && fmtStr[i] <= '9' {
					prec = prec*10 + int(fmtStr[i]-'0')
					i++
				}
			}
		}
		longMod := false
		for i < len(fmtStr) && (fmtStr[i] == 'l' || fmtStr[i] == 'h' || fmtStr[i] == 'z') {
			if fmtStr[i] == 'l' || fmtStr[i] == 'z' {
				longMod = true
			}
			i++
		}
		if i >= len(fmtStr) {
			break
		}
		conv := fmtStr[i]
		i++
		var piece string
		switch conv {
		case '%':
			piece = "%"
		case 'c':
			piece = string(byte(va.nextInt()))
		case 's':
			addr := uint64(va.nextInt())
			if addr == 0 {
				piece = "(null)"
				break
			}
			n, err := wordStrlen(m, addr)
			if err != nil {
				return nativevm.Value{}, err
			}
			if prec >= 0 && int64(prec) < n {
				n = int64(prec)
			}
			data, f := m.Mem.ReadBytes(addr, n)
			if f != nil {
				return nativevm.Value{}, f
			}
			piece = string(data)
		case 'd', 'i':
			v := va.nextInt()
			if !longMod {
				v = int64(int32(v))
			}
			piece = strconv.FormatInt(v, 10)
		case 'u':
			v := va.nextInt()
			if !longMod {
				v = int64(uint32(v))
				piece = strconv.FormatUint(uint64(v), 10)
			} else {
				piece = strconv.FormatUint(uint64(v), 10)
			}
		case 'x', 'X', 'o', 'p':
			v := uint64(va.nextInt())
			if !longMod && conv != 'p' {
				v = uint64(uint32(v))
			}
			base := 16
			if conv == 'o' {
				base = 8
			}
			piece = strconv.FormatUint(v, base)
			if conv == 'X' {
				piece = strings.ToUpper(piece)
			}
			if conv == 'p' {
				piece = "0x" + piece
			}
		case 'f', 'e', 'g', 'E', 'G':
			v := va.nextFloat()
			p := prec
			if p < 0 {
				p = 6
			}
			k := byte('f')
			if conv == 'e' || conv == 'E' {
				k = 'e'
			}
			if conv == 'g' || conv == 'G' {
				k = 'g'
				if p == 0 {
					p = 1
				}
			}
			piece = strconv.FormatFloat(v, k, p, 64)
		default:
			piece = "%" + string(conv)
		}
		// padding
		if conv != 's' && conv != 'c' && prec > len(stripSign(piece)) && isIntConv(conv) {
			sign := ""
			body := piece
			if len(piece) > 0 && (piece[0] == '-' || piece[0] == '+') {
				sign, body = piece[:1], piece[1:]
			}
			piece = sign + strings.Repeat("0", prec-len(body)) + body
		}
		if width > len(piece) {
			pad := " "
			if strings.ContainsRune(flags, '0') && !strings.ContainsRune(flags, '-') && conv != 's' {
				pad = "0"
			}
			if strings.ContainsRune(flags, '-') {
				piece += strings.Repeat(" ", width-len(piece))
			} else if pad == "0" && len(piece) > 0 && (piece[0] == '-' || piece[0] == '+') {
				piece = piece[:1] + strings.Repeat("0", width-len(piece)) + piece[1:]
			} else {
				piece = strings.Repeat(pad, width-len(piece)) + piece
			}
		}
		out.WriteString(piece)
	}
	s := out.String()
	if buf == nil {
		m.Stdout.WriteString(s)
		return nativevm.IntVal(int64(len(s))), nil
	}
	// sprintf/snprintf: raw stores, no checking (uninstrumented libc).
	limit := int64(len(s))
	if cap >= 0 && limit > cap-1 {
		limit = cap - 1
		if limit < 0 {
			limit = 0
		}
	}
	for j := int64(0); j < limit; j++ {
		if f := m.Mem.StoreByte(*buf+uint64(j), s[j]); f != nil {
			return nativevm.Value{}, f
		}
	}
	if cap != 0 {
		if f := m.Mem.StoreByte(*buf+uint64(limit), 0); f != nil {
			return nativevm.Value{}, f
		}
	}
	return nativevm.IntVal(int64(len(s))), nil
}

func stripSign(s string) string {
	if len(s) > 0 && (s[0] == '-' || s[0] == '+') {
		return s[1:]
	}
	return s
}

func isIntConv(c byte) bool {
	switch c {
	case 'd', 'i', 'u', 'x', 'X', 'o':
		return true
	}
	return false
}
