package nlibc

import "repro/internal/nativevm"

// hardRoom returns the destination's remaining capacity from dst under the
// hardened-libc policy, or -1 when unclamped (machine not hardened, object
// unknown, or no usable room — graceful degradation to ordinary behavior,
// mirroring the managed libc's __SS_HARDENED rule).
func hardRoom(m *nativevm.Machine, dst uint64) int64 {
	if !m.HardenedLibc() {
		return -1
	}
	if base, size, ok := m.ObjectExtent(dst); ok {
		if room := int64(base) + size - int64(dst); room > 0 {
			return room
		}
	}
	return -1
}

func addString(t map[string]nativevm.LibFunc, checked bool) {
	t["strlen"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		// Word-wise, unchecked: the glibc fast path (P4).
		n, err := wordStrlen(m, uint64(c.Args[0].I))
		return nativevm.IntVal(n), err
	}
	t["strcpy"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		dst, src := uint64(c.Args[0].I), uint64(c.Args[1].I)
		room := hardRoom(m, dst)
		for i := uint64(0); ; i++ {
			b, err := a.loadByte(src + i)
			if err != nil {
				return nativevm.Value{}, err
			}
			if room >= 0 && int64(i)+1 >= room {
				// Hardened: out of destination room — terminate in place
				// instead of overflowing.
				if err := a.storeByte(dst+i, 0); err != nil {
					return nativevm.Value{}, err
				}
				break
			}
			if err := a.storeByte(dst+i, b); err != nil {
				return nativevm.Value{}, err
			}
			if b == 0 {
				break
			}
		}
		return c.Args[0], nil
	}
	t["strncpy"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		dst, src, n := uint64(c.Args[0].I), uint64(c.Args[1].I), c.Args[2].I
		var i int64
		for i = 0; i < n; i++ {
			b, err := a.loadByte(src + uint64(i))
			if err != nil {
				return nativevm.Value{}, err
			}
			if err := a.storeByte(dst+uint64(i), b); err != nil {
				return nativevm.Value{}, err
			}
			if b == 0 {
				break
			}
		}
		for ; i < n; i++ {
			if err := a.storeByte(dst+uint64(i), 0); err != nil {
				return nativevm.Value{}, err
			}
		}
		return c.Args[0], nil
	}
	t["strcat"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		dst, src := uint64(c.Args[0].I), uint64(c.Args[1].I)
		n, err := wordStrlen(m, dst)
		if err != nil {
			return nativevm.Value{}, err
		}
		room := hardRoom(m, dst)
		for i := uint64(0); ; i++ {
			b, err := a.loadByte(src + i)
			if err != nil {
				return nativevm.Value{}, err
			}
			if room >= 0 && n+int64(i)+1 >= room {
				if err := a.storeByte(dst+uint64(n)+i, 0); err != nil {
					return nativevm.Value{}, err
				}
				break
			}
			if err := a.storeByte(dst+uint64(n)+i, b); err != nil {
				return nativevm.Value{}, err
			}
			if b == 0 {
				break
			}
		}
		return c.Args[0], nil
	}
	t["strncat"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		dst, src, n := uint64(c.Args[0].I), uint64(c.Args[1].I), c.Args[2].I
		base, err := wordStrlen(m, dst)
		if err != nil {
			return nativevm.Value{}, err
		}
		var i int64
		for i = 0; i < n; i++ {
			b, err := a.loadByte(src + uint64(i))
			if err != nil {
				return nativevm.Value{}, err
			}
			if b == 0 {
				break
			}
			if err := a.storeByte(dst+uint64(base+i), b); err != nil {
				return nativevm.Value{}, err
			}
		}
		if err := a.storeByte(dst+uint64(base+i), 0); err != nil {
			return nativevm.Value{}, err
		}
		return c.Args[0], nil
	}
	strcmpImpl := func(m *nativevm.Machine, pa, pb uint64, n int64, bounded bool) (int64, error) {
		// Byte-wise but unchecked: comparison loops are also fast paths.
		for i := int64(0); !bounded || i < n; i++ {
			if err := m.ChargeSteps(1); err != nil {
				return 0, err
			}
			ba, f := m.Mem.LoadByte(pa + uint64(i))
			if f != nil {
				return 0, f
			}
			bb, f := m.Mem.LoadByte(pb + uint64(i))
			if f != nil {
				return 0, f
			}
			if ba != bb {
				return int64(ba) - int64(bb), nil
			}
			if ba == 0 {
				return 0, nil
			}
		}
		return 0, nil
	}
	t["strcmp"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		r, err := strcmpImpl(m, uint64(c.Args[0].I), uint64(c.Args[1].I), 0, false)
		return nativevm.IntVal(r), err
	}
	t["strncmp"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		r, err := strcmpImpl(m, uint64(c.Args[0].I), uint64(c.Args[1].I), c.Args[2].I, true)
		return nativevm.IntVal(r), err
	}
	t["strchr"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		s, ch := uint64(c.Args[0].I), byte(c.Args[1].I)
		for i := uint64(0); ; i++ {
			b, err := a.loadByte(s + i)
			if err != nil {
				return nativevm.Value{}, err
			}
			if b == ch {
				return nativevm.IntVal(int64(s + i)), nil
			}
			if b == 0 {
				return nativevm.IntVal(0), nil
			}
		}
	}
	t["strrchr"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		s, ch := uint64(c.Args[0].I), byte(c.Args[1].I)
		found := int64(0)
		for i := uint64(0); ; i++ {
			b, err := a.loadByte(s + i)
			if err != nil {
				return nativevm.Value{}, err
			}
			if b == ch {
				found = int64(s + i)
			}
			if b == 0 {
				return nativevm.IntVal(found), nil
			}
		}
	}
	t["strstr"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		hay, needle := uint64(c.Args[0].I), uint64(c.Args[1].I)
		nl, err := wordStrlen(m, needle)
		if err != nil {
			return nativevm.Value{}, err
		}
		if nl == 0 {
			return nativevm.IntVal(int64(hay)), nil
		}
		nb, f := m.Mem.ReadBytes(needle, nl)
		if f != nil {
			return nativevm.Value{}, f
		}
		for i := uint64(0); ; i++ {
			if err := m.ChargeSteps(1); err != nil {
				return nativevm.Value{}, err
			}
			b, f := m.Mem.LoadByte(hay + i)
			if f != nil {
				return nativevm.Value{}, f
			}
			if b == 0 {
				return nativevm.IntVal(0), nil
			}
			match := true
			for j := int64(0); j < nl; j++ {
				hb, f := m.Mem.LoadByte(hay + i + uint64(j))
				if f != nil {
					return nativevm.Value{}, f
				}
				if hb != nb[j] {
					match = false
					break
				}
			}
			if match {
				return nativevm.IntVal(int64(hay + i)), nil
			}
		}
	}
	inSet := func(m *nativevm.Machine, set uint64, ch byte) (bool, error) {
		// The delimiter scan reads the set string unchecked — this is the
		// strtok blind spot of Fig. 11 on native tools.
		for j := uint64(0); ; j++ {
			if err := m.ChargeSteps(1); err != nil {
				return false, err
			}
			d, f := m.Mem.LoadByte(set + j)
			if f != nil {
				return false, f
			}
			if d == 0 {
				return false, nil
			}
			if d == ch {
				return true, nil
			}
		}
	}
	t["strtok"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		s := uint64(c.Args[0].I)
		delim := uint64(c.Args[1].I)
		if s == 0 {
			s = m.StrtokSave
		}
		if s == 0 {
			return nativevm.IntVal(0), nil
		}
		for {
			b, f := m.Mem.LoadByte(s)
			if f != nil {
				return nativevm.Value{}, f
			}
			if b == 0 {
				m.StrtokSave = 0
				return nativevm.IntVal(0), nil
			}
			hit, err := inSet(m, delim, b)
			if err != nil {
				return nativevm.Value{}, err
			}
			if !hit {
				break
			}
			s++
		}
		start := s
		for {
			b, f := m.Mem.LoadByte(s)
			if f != nil {
				return nativevm.Value{}, f
			}
			if b == 0 {
				m.StrtokSave = 0
				return nativevm.IntVal(int64(start)), nil
			}
			hit, err := inSet(m, delim, b)
			if err != nil {
				return nativevm.Value{}, err
			}
			if hit {
				m.Mem.StoreByte(s, 0)
				m.StrtokSave = s + 1
				return nativevm.IntVal(int64(start)), nil
			}
			s++
		}
	}
	t["strdup"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		s := uint64(c.Args[0].I)
		n, err := wordStrlen(m, s)
		if err != nil {
			return nativevm.Value{}, err
		}
		dst := m.Alloc.Malloc(n + 1)
		if dst == 0 {
			return nativevm.IntVal(0), nil // allocation denied: strdup returns NULL
		}
		data, f := m.Mem.ReadBytes(s, n+1)
		if f != nil {
			return nativevm.Value{}, f
		}
		m.Mem.WriteBytes(dst, data)
		return nativevm.IntVal(int64(dst)), nil
	}
	spanImpl := func(m *nativevm.Machine, s, set uint64, reject bool) (int64, error) {
		n := int64(0)
		for {
			b, f := m.Mem.LoadByte(s + uint64(n))
			if f != nil {
				return 0, f
			}
			if b == 0 {
				return n, nil
			}
			hit, err := inSet(m, set, b)
			if err != nil {
				return 0, err
			}
			if hit == reject {
				return n, nil
			}
			n++
		}
	}
	t["strspn"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		n, err := spanImpl(m, uint64(c.Args[0].I), uint64(c.Args[1].I), false)
		return nativevm.IntVal(n), err
	}
	t["strcspn"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		n, err := spanImpl(m, uint64(c.Args[0].I), uint64(c.Args[1].I), true)
		return nativevm.IntVal(n), err
	}

	memcpyImpl := func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		dst, src, n := uint64(c.Args[0].I), uint64(c.Args[1].I), c.Args[2].I
		n = m.WriteCap(dst, n)
		if dst < src {
			for i := int64(0); i < n; i++ {
				b, err := a.loadByte(src + uint64(i))
				if err != nil {
					return nativevm.Value{}, err
				}
				if err := a.storeByte(dst+uint64(i), b); err != nil {
					return nativevm.Value{}, err
				}
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				b, err := a.loadByte(src + uint64(i))
				if err != nil {
					return nativevm.Value{}, err
				}
				if err := a.storeByte(dst+uint64(i), b); err != nil {
					return nativevm.Value{}, err
				}
			}
		}
		return c.Args[0], nil
	}
	t["memcpy"] = memcpyImpl
	t["memmove"] = memcpyImpl
	t["__builtin_memcpy"] = memcpyImpl
	memsetImpl := func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		dst, ch, n := uint64(c.Args[0].I), byte(c.Args[1].I), c.Args[2].I
		n = m.WriteCap(dst, n)
		for i := int64(0); i < n; i++ {
			if err := a.storeByte(dst+uint64(i), ch); err != nil {
				return nativevm.Value{}, err
			}
		}
		return c.Args[0], nil
	}
	t["memset"] = memsetImpl
	t["__builtin_memset"] = memsetImpl
	t["memcmp"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		pa, pb, n := uint64(c.Args[0].I), uint64(c.Args[1].I), c.Args[2].I
		for i := int64(0); i < n; i++ {
			ba, err := a.loadByte(pa + uint64(i))
			if err != nil {
				return nativevm.Value{}, err
			}
			bb, err := a.loadByte(pb + uint64(i))
			if err != nil {
				return nativevm.Value{}, err
			}
			if ba != bb {
				return nativevm.IntVal(int64(ba) - int64(bb)), nil
			}
		}
		return nativevm.IntVal(0), nil
	}
	t["memchr"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		a := mem{m, checked}
		s, ch, n := uint64(c.Args[0].I), byte(c.Args[1].I), c.Args[2].I
		for i := int64(0); i < n; i++ {
			b, err := a.loadByte(s + uint64(i))
			if err != nil {
				return nativevm.Value{}, err
			}
			if b == ch {
				return nativevm.IntVal(int64(s + uint64(i))), nil
			}
		}
		return nativevm.IntVal(0), nil
	}
}
