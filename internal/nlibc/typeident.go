package nlibc

import (
	"repro/internal/nativevm"
)

// Introspection builtins, native side ("Introspection for C", Rigger et
// al.). The managed engine answers from per-object metadata; the native
// machine answers best-effort from the allocator's bookkeeping and the
// memdesc address-range mirror. Where the machine genuinely cannot know —
// an interior pointer into an untyped heap block, a forged address — it
// returns the documented don't-know values (-1 size, 0 bounds, "unknown"
// type) instead of guessing. The builtins are pure observers: they never
// touch the gated allocator, so calling them cannot shift a fault-schedule
// coordinate.
func addTypeIdent(t map[string]nativevm.LibFunc) {
	t["_size_of_object"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		addr := uint64(c.Args[0].I)
		if addr == 0 {
			return nativevm.IntVal(-1), nil
		}
		if _, size, ok := m.ObjectExtent(addr); ok {
			return nativevm.IntVal(size), nil
		}
		return nativevm.IntVal(-1), nil
	}
	t["_type_of"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		addr := uint64(c.Args[0].I)
		name := "unknown"
		switch {
		case addr == 0:
			name = "null"
		case nativevm.FuncIndexOf(addr) >= 0:
			name = "function"
		default:
			if n := m.TypeNameAt(addr); n != "" {
				name = n
			}
		}
		return nativevm.IntVal(int64(m.InternTypeStr(name))), nil
	}
	t["_bounds_of"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
		addr := uint64(c.Args[0].I)
		if addr == 0 {
			return nativevm.IntVal(0), nil
		}
		if base, size, ok := m.ObjectExtent(addr); ok {
			rem := int64(base) + size - int64(addr)
			if rem < 0 {
				rem = 0
			}
			return nativevm.IntVal(rem), nil
		}
		return nativevm.IntVal(0), nil
	}
}
