package nlibc

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/nativevm"
)

// runC builds a tiny IR program that calls one libc function and returns
// its result; most coverage of nlibc comes from the repository-level
// differential suite, so these tests focus on the Go-level contracts.
func newMachine(t *testing.T, src string, stdin string) *nativevm.Machine {
	t.Helper()
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := nativevm.New(mod, nativevm.Config{
		Libc:  Table(false),
		Stdin: strings.NewReader(stdin),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWordStrlenReadsPastNUL(t *testing.T) {
	m := newMachine(t, `module "t"
global @s [4 x i8] = bytes "abc\x00"
func @main fn() i32 regs 1 { entry: ret i32 0 }
`, "")
	n, err := wordStrlen(m, m.GlobalAddr("s"))
	if err != nil || n != 3 {
		t.Errorf("strlen = %d, %v", n, err)
	}
	// An unterminated string keeps scanning into adjacent memory without
	// error (the word-wise blind spot).
	m2 := newMachine(t, `module "t"
global @u [4 x i8] = bytes "abcd"
global @next [8 x i8] = bytes "efg\x00zzzz"
func @main fn() i32 regs 1 { entry: ret i32 0 }
`, "")
	n, err = wordStrlen(m2, m2.GlobalAddr("u"))
	if err != nil {
		t.Fatalf("unterminated strlen faulted: %v", err)
	}
	if n <= 4 {
		t.Errorf("unterminated strlen should run into the neighbour, got %d", n)
	}
}

func TestTableCompleteness(t *testing.T) {
	tab := Table(false)
	must := []string{
		"printf", "sprintf", "snprintf", "fprintf", "scanf", "fscanf",
		"puts", "gets", "fgets", "putchar", "getchar", "fwrite", "fread",
		"strlen", "strcpy", "strncpy", "strcat", "strcmp", "strncmp",
		"strchr", "strrchr", "strstr", "strtok", "strdup",
		"memcpy", "memmove", "memset", "memcmp", "memchr",
		"malloc", "calloc", "realloc", "free", "exit", "abort",
		"atoi", "atol", "atof", "strtol", "strtod", "abs", "labs",
		"rand", "srand", "qsort", "bsearch", "getenv", "clock",
		"isdigit", "isalpha", "isspace", "toupper", "tolower",
		"sin", "cos", "sqrt", "pow", "floor", "fabs",
		"__builtin_memcpy", "__builtin_memset",
		"__ss_putchar", "__ss_getchar", "__ss_fwrite",
		"__ss_count_varargs", "__ss_get_vararg", "__ss_ftoa", "__ss_atof",
	}
	for _, name := range must {
		if tab[name] == nil {
			t.Errorf("nlibc missing %q", name)
		}
	}
	t.Logf("nlibc binds %d functions", len(tab))
}

func TestParsePrefixInt(t *testing.T) {
	cases := []struct {
		s    string
		base int
		v    int64
		n    int
	}{
		{"42", 10, 42, 2},
		{"-17", 10, -17, 3},
		{"ff", 16, 255, 2},
		{"0x10", 0, 16, 4},
		{"0755", 0, 493, 4},
		{"12ab", 10, 12, 2},
		{"", 10, 0, 0},
	}
	for _, c := range cases {
		v, n := parsePrefixInt(c.s, c.base)
		if v != c.v || n != c.n {
			t.Errorf("parsePrefixInt(%q,%d) = (%d,%d), want (%d,%d)", c.s, c.base, v, n, c.v, c.n)
		}
	}
}

func TestFloatPrefixLen(t *testing.T) {
	cases := []struct {
		s string
		n int
	}{
		{"1.5", 3},
		{"-2.25e3xyz", 7},
		{"42", 2},
		{"1e", 1}, // dangling exponent not consumed
		{"abc", 0},
	}
	for _, c := range cases {
		if got := floatPrefixLen(c.s); got != c.n {
			t.Errorf("floatPrefixLen(%q) = %d, want %d", c.s, got, c.n)
		}
	}
}
