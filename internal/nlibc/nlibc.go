// Package nlibc is the native engines' C library: implemented in Go over raw
// simulated memory, standing in for a precompiled, performance-optimized
// glibc. Its accesses are normally invisible to the tools (ASan does not
// instrument prebuilt libraries; Valgrind suppresses its word-wise string
// loops), which reproduces the paper's P4: bugs in arguments passed to libc
// escape the baseline tools unless an interceptor exists for that function.
package nlibc

import (
	"math"

	"repro/internal/core"
	"repro/internal/nativevm"
)

// Table returns the full native libc binding.
// checked selects Valgrind-style operation: ordinary libc accesses go
// through the tool's checker (binary instrumentation sees everything),
// except the word-wise strlen/strcmp fast paths, which Valgrind famously
// whitelists (paper §2.3, P4). With checked=false (plain native and ASan),
// no libc access is ever checked.
func Table(checked bool) map[string]nativevm.LibFunc {
	t := map[string]nativevm.LibFunc{}
	addStdio(t, checked)
	addString(t, checked)
	addStdlib(t, checked)
	addCtype(t)
	addMath(t)
	addTypeIdent(t)
	return t
}

// mem is a small access helper carrying the checking policy.
type mem struct {
	m       *nativevm.Machine
	checked bool
}

func (a mem) load(addr uint64, size int64) (int64, error) {
	// Fuel: libc loops are guest work. Charging one step per access keeps a
	// size-corrupted bulk operation inside the machine's step budget and
	// makes it observe cooperative cancellation (execution governor).
	if err := a.m.ChargeSteps(1); err != nil {
		return 0, err
	}
	if a.checked && a.m.Checker() != nil {
		if rep := a.m.Checker().Load(addr, size); rep != nil {
			return 0, rep
		}
	}
	v, f := a.m.Mem.Load(addr, size)
	if f != nil {
		return 0, f
	}
	return int64(v), nil
}

func (a mem) store(addr uint64, size int64, v int64) error {
	if err := a.m.ChargeSteps(1); err != nil {
		return err
	}
	if a.checked && a.m.Checker() != nil {
		if rep := a.m.Checker().Store(addr, size); rep != nil {
			return rep
		}
	}
	if f := a.m.Mem.Store(addr, size, uint64(v)); f != nil {
		return f
	}
	return nil
}

func (a mem) loadByte(addr uint64) (byte, error) {
	v, err := a.load(addr, 1)
	return byte(v), err
}

func (a mem) storeByte(addr uint64, b byte) error { return a.store(addr, 1, int64(b)) }

// wordStrlen is the performance-optimized strlen: it reads 8 bytes at a
// time, deliberately unchecked (Valgrind suppresses these loops; ASan never
// sees them). It can read past the terminator within the final word, and
// past the end of an unterminated buffer until it happens to hit a zero
// byte or an unmapped page.
func wordStrlen(m *nativevm.Machine, addr uint64) (int64, error) {
	n := int64(0)
	for {
		// Fuel: one step per scanned word, so an unterminated scan over a
		// large mapped region stays inside the machine's step budget.
		if err := m.ChargeSteps(1); err != nil {
			return 0, err
		}
		w, f := m.Mem.Load(addr+uint64(n), 8)
		if f != nil {
			// Fall back to byte loads near a page boundary, like real
			// implementations that align first.
			for {
				b, f2 := m.Mem.LoadByte(addr + uint64(n))
				if f2 != nil {
					return 0, f2
				}
				if b == 0 {
					return n, nil
				}
				n++
			}
		}
		for i := 0; i < 8; i++ {
			if byte(w>>(8*uint(i))) == 0 {
				return n + int64(i), nil
			}
		}
		n += 8
	}
}

// vaReader walks a variadic area: 8-byte slots read straight from the
// stack. Reading more slots than were passed just keeps walking the stack —
// no count exists at the machine level.
type vaReader struct {
	m    *nativevm.Machine
	addr uint64
}

func (v *vaReader) nextInt() int64 {
	raw, _ := v.m.Mem.Load(v.addr, 8)
	v.addr += 8
	return int64(raw)
}

func (v *vaReader) nextFloat() float64 {
	raw, _ := v.m.Mem.Load(v.addr, 8)
	v.addr += 8
	return math.Float64frombits(raw)
}

func exitErr(code int) error { return &core.ExitError{Code: code} }
