package sulong_test

import (
	"testing"
	"time"

	"repro/internal/benchprog"
	"repro/internal/harness"
)

func TestPeakQuick(t *testing.T) {
	b, err := benchprog.Get("nbody")
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.MeasurePeak(b, b.SmallArg, 3, 3, harness.PerfConfigs())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range harness.PerfConfigs() {
		t.Logf("%-14v %8v  %.2fx", cfg, res.Times[cfg], res.Relative(cfg))
	}
}

func TestWarmupQuick(t *testing.T) {
	b, err := benchprog.Get("meteor")
	if err != nil {
		t.Fatal(err)
	}
	out, err := harness.MeasureWarmup(b, b.SmallArg, 900*time.Millisecond, 300*time.Millisecond,
		[]harness.PerfConfig{harness.SafeSulongPerf, harness.ASanPerf})
	if err != nil {
		t.Fatal(err)
	}
	for cfg, samples := range out {
		for _, s := range samples {
			t.Logf("%v bucket %d: %d iters, %d compiled", cfg, s.Bucket, s.Iterations, s.Compiled)
		}
	}
}
