package sulong_test

import (
	"bytes"
	"strings"
	"testing"

	sulong "repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/jit"
)

// run2 executes src under Safe Sulong in the given tier and returns the
// result; tier-2 compiles every function on its first call so the faulting
// execution runs compiled code.
func run2(t *testing.T, src string, jitOn bool) sulong.Result {
	t.Helper()
	cfg := sulong.Config{
		Engine:   sulong.EngineSafeSulong,
		Stdin:    strings.NewReader(""),
		MaxSteps: harness.DefaultMaxSteps,
		JIT:      jitOn,
	}
	if jitOn {
		cfg.JITThreshold = 1
	}
	res, err := sulong.Run(src, cfg)
	if err != nil {
		t.Fatalf("jit=%v: %v", jitOn, err)
	}
	return res
}

// requireFaultParity asserts the two tiers agree on everything observable
// about a faulting run: the bug kind, the rendered diagnostics (backtraces
// included), and the exact step count — which pins the faulting iteration.
func requireFaultParity(t *testing.T, interp, jitted sulong.Result, wantKind core.BugKind) {
	t.Helper()
	for tier, res := range map[string]sulong.Result{"tier-0": interp, "tier-2": jitted} {
		if res.Bug == nil {
			t.Fatalf("%s: no bug detected", tier)
		}
		if res.Bug.Kind != wantKind {
			t.Fatalf("%s: detected %v, want %v", tier, res.Bug.Kind, wantKind)
		}
	}
	if len(interp.Diagnostics) != len(jitted.Diagnostics) {
		t.Fatalf("diagnostic counts diverge: tier-0 %d, tier-2 %d",
			len(interp.Diagnostics), len(jitted.Diagnostics))
	}
	for i := range interp.Diagnostics {
		d0, d1 := interp.Diagnostics[i].Render(), jitted.Diagnostics[i].Render()
		if d0 != d1 {
			t.Errorf("diagnostic %d diverges:\n--- tier-0 ---\n%s\n--- tier-2 ---\n%s", i, d0, d1)
		}
	}
	if interp.Stats.Steps != jitted.Stats.Steps {
		t.Errorf("step accounting diverges: tier-0 %d, tier-2 %d (Δ %d) — "+
			"the fault did not land on the same iteration/instruction",
			interp.Stats.Steps, jitted.Stats.Steps, jitted.Stats.Steps-interp.Stats.Steps)
	}
}

// TestHoistedCheckFaultsAtExactIteration exercises the hoisting legality
// rule: the loop's bounds checks may be restructured by tier-2 (invariant
// operands hoisted to the preheader, gep+access pairs fused), but the
// out-of-bounds write at i==10 must fault on exactly the same iteration with
// the same diagnostic as the interpreter. The first call is clean and warms
// the function into tier-2; the second call faults inside compiled code.
func TestHoistedCheckFaultsAtExactIteration(t *testing.T) {
	const src = `
int buf[10];
int fill(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        buf[i] = i;        /* faults when i == 10 */
        s += buf[i];
    }
    return s;
}
int main(void) {
    int s = fill(10);      /* clean: warm-up + compile */
    s += fill(13);         /* out of bounds at iteration 10 */
    return s;
}`
	interp := run2(t, src, false)
	jitted := run2(t, src, true)
	requireFaultParity(t, interp, jitted, core.OutOfBounds)
}

// TestCoalescedRunFaultsAtExactField exercises bounds-check coalescing: the
// four consecutive constant-index loads in sum() coalesce into one range
// check over [0,32) in tier-2. On the short 16-byte object that window check
// fails, the compiled code must fall back to per-access checking, and the
// fault must blame exactly the third slot (offset 16) — with the loads of
// q[0] and q[1] charged, and q[2]'s and q[3]'s never charged — matching
// tier-0 to the step. (The buffers are plain long arrays: casting an
// undersized block to a wider struct type is now itself a detected
// mismatched-cast error, tested separately in typecheck_test.go.)
func TestCoalescedRunFaultsAtExactField(t *testing.T) {
	const src = `
#include <stdlib.h>
long sum(long *q) { return q[0] + q[1] + q[2] + q[3]; }
int main(void) {
    long *q = malloc(4 * sizeof(long));
    q[0] = 1; q[1] = 2; q[2] = 3; q[3] = 4;
    long s = sum(q);                                  /* clean: warm-up + compile */
    long *shortq = malloc(2 * sizeof(long));
    shortq[0] = 5; shortq[1] = 6;
    s += sum(shortq);                                 /* q[2] reads past the object */
    return (int)s;
}`
	interp := run2(t, src, false)
	jitted := run2(t, src, true)
	requireFaultParity(t, interp, jitted, core.OutOfBounds)
}

// TestUseAfterFreeUnderCoalescing checks the other leg of coalescing
// legality: a freed object must still be blamed as a use-after-free (not a
// generic range failure) when the access sits inside a coalesced run, with
// the allocation-site and free-site stacks intact.
func TestUseAfterFreeUnderCoalescing(t *testing.T) {
	const src = `
#include <stdlib.h>
struct pair { long x; long y; };
long both(struct pair *p) { return p->x + p->y; }
int main(void) {
    struct pair *p = malloc(sizeof(struct pair));
    p->x = 1; p->y = 2;
    long s = both(p);      /* clean: warm-up + compile */
    free(p);
    s += both(p);          /* use after free inside the coalesced run */
    return (int)s;
}`
	interp := run2(t, src, false)
	jitted := run2(t, src, true)
	requireFaultParity(t, interp, jitted, core.UseAfterFree)
	for tier, res := range map[string]sulong.Result{"tier-0": interp, "tier-2": jitted} {
		if res.Bug.AllocStack.IsEmpty() || res.Bug.FreeStack.IsEmpty() {
			t.Errorf("%s: use-after-free report lacks alloc/free-site stacks", tier)
		}
	}
}

// TestFramePoolFaultReuse is the frame-pool x fault-plane interaction test:
// an engine that just unwound an injected allocation failure must behave,
// on its next run, exactly like a fresh engine — pooled frames carry no
// residue from the aborted activation.
func TestFramePoolFaultReuse(t *testing.T) {
	const src = `
#include <stdlib.h>
#include <stdio.h>
int work(int n) {
    int *p = malloc(n * sizeof(int));
    if (!p) { printf("alloc failed\n"); return -1; }
    int s = 0;
    for (int i = 0; i < n; i++) p[i] = i;
    for (int i = 0; i < n; i++) s += p[i];
    free(p);
    return s;
}
int main(void) {
    printf("%d\n", work(100));
    return 0;
}`
	mod, err := sulong.CompileOnly(src)
	if err != nil {
		t.Fatal(err)
	}
	build := func(plan fault.Plan) (*core.Engine, *bytes.Buffer) {
		var out bytes.Buffer
		e, err := core.NewEngine(mod, core.Config{
			Stdout:         &out,
			Tier1:          jit.New(),
			Tier1Threshold: 1,
			FaultPlan:      plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e, &out
	}

	// Engine A: the first run hits the injected failure of allocation #1 and
	// takes the guest's error path; the second run is clean and consumes
	// frames recycled from the aborted first run.
	eng, out := build(fault.Plan{FailNth: 1})
	if _, err := eng.Run(); err != nil {
		t.Fatalf("fault-injected run: %v", err)
	}
	first := out.String()
	if !strings.Contains(first, "alloc failed") {
		t.Fatalf("injected failure not observed; stdout:\n%s", first)
	}
	preSteps := eng.Stats().Steps
	if _, err := eng.Run(); err != nil {
		t.Fatalf("clean run after fault: %v", err)
	}
	reusedOut := strings.TrimPrefix(out.String(), first)
	reusedSteps := eng.Stats().Steps - preSteps

	// Engine B: fresh, no fault plan — the reference for the clean run.
	fresh, fout := build(fault.Plan{})
	if _, err := fresh.Run(); err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	if reusedOut != fout.String() {
		t.Errorf("recycled-frame run diverges from fresh engine:\n--- reused ---\n%s--- fresh ---\n%s",
			reusedOut, fout.String())
	}
	if reusedSteps != fresh.Stats().Steps {
		t.Errorf("step accounting diverges: reused engine %d, fresh engine %d",
			reusedSteps, fresh.Stats().Steps)
	}
}
